/**
 * @file
 * End-to-end environment audit over real applications (detsan v2).
 *
 * This target compiles bfs, sssp and dmr — plus the generators and the
 * geometry kernel they stand on — with DETGALOIS_DETSAN=1, so the full
 * production task pipeline (id assignment, windowing, digest fold) runs
 * its checked value channels under plain `ctest`. Proven here:
 *
 *  - the shipped apps are EnvLeak-free: instrumented runs produce clean
 *    reports and the same digests as the golden suite, on 1/2/4/8
 *    threads;
 *  - the *seeded* leak — a pointer-ordered id tiebreak behind
 *    DetOptions::envLeakProbe, the canonical ASLR bug — is caught by
 *    the dynamic checker, attributed to the right channel and source,
 *    with a report that is byte-identical across thread counts;
 *  - the probe is schedule-neutral: catching the leak does not perturb
 *    the digest, so the checker's report determinism claim is tested
 *    under the exact conditions it exists for.
 *
 * ODR note: every translation unit in this binary is instrumented; the
 * linked libraries (dg_support, dg_model, dg_analysis) instantiate no
 * executor or graph templates, so instrumented and uninstrumented
 * copies never meet (same discipline as detsan_test).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/detsan.h"
#include "apps/bfs.h"
#include "apps/dmr.h"
#include "apps/sssp.h"
#include "graph/generators.h"

namespace {

namespace detsan = galois::analysis;
using detsan::DetSanReport;
using detsan::Violation;
using detsan::ViolationKind;

galois::Config
detCfg(unsigned threads, bool probe = false)
{
    galois::Config cfg;
    cfg.exec = galois::Exec::Det;
    cfg.threads = threads;
    cfg.det.envLeakProbe = probe;
    return cfg;
}

galois::RunReport
runBfs(const galois::Config& cfg)
{
    auto edges = galois::graph::randomKOut(1500, 5, 11, /*symmetric=*/true);
    galois::apps::bfs::Graph g(1500, edges);
    return galois::apps::bfs::galoisBfs(g, 0, cfg);
}

galois::RunReport
runSssp(const galois::Config& cfg)
{
    auto edges = galois::apps::sssp::randomWeightedGraph(1200, 4, 100, 13);
    galois::apps::sssp::Graph g(1200, edges);
    return galois::apps::sssp::galoisSssp(g, 0, cfg);
}

galois::RunReport
runDmr(const galois::Config& cfg)
{
    galois::apps::dmr::Problem prob;
    galois::apps::dmr::makeProblem(400, 37, prob);
    return galois::apps::dmr::refine(prob, cfg);
}

class EnvAuditTest : public ::testing::Test
{
  protected:
    void SetUp() override { detsan::configure(detsan::DetSanOptions{}); }
    void TearDown() override { detsan::configure(detsan::DetSanOptions{}); }
};

// ---------------------------------------------------------------------
// Shipped apps are EnvLeak-free under full instrumentation.
// ---------------------------------------------------------------------

TEST_F(EnvAuditTest, InstrumentedAppsRunCleanWithPortableDigests)
{
    struct App
    {
        const char* name;
        galois::RunReport (*run)(const galois::Config&);
    };
    const App apps[] = {{"bfs", runBfs}, {"sssp", runSssp}, {"dmr", runDmr}};
    for (const App& app : apps) {
        std::uint64_t digest1 = 0;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            detsan::configure(detsan::DetSanOptions{});
            const galois::RunReport r = app.run(detCfg(threads));
            const DetSanReport report = detsan::takeReport();
            EXPECT_TRUE(report.clean())
                << app.name << " threads=" << threads << "\n"
                << report.toString();
            ASSERT_NE(r.traceDigest, 0u) << app.name;
            if (threads == 1)
                digest1 = r.traceDigest;
            else
                EXPECT_EQ(r.traceDigest, digest1)
                    << app.name << " threads=" << threads;
        }
    }
}

// ---------------------------------------------------------------------
// The seeded env-leak probe: caught, attributed, deterministic.
// ---------------------------------------------------------------------

TEST_F(EnvAuditTest, SeededPointerTiebreakIsCaughtDeterministically)
{
    const std::uint64_t cleanDigest = runBfs(detCfg(1)).traceDigest;
    detsan::resetReport();
    detsan::clearTaints();

    std::vector<DetSanReport> reports;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        detsan::configure(detsan::DetSanOptions{}); // fresh taints+report
        const galois::RunReport r = runBfs(detCfg(threads, /*probe=*/true));
        reports.push_back(detsan::takeReport());
        // The probe only breaks (parent, rank) ties, which well-formed
        // pushes never produce: catching the leak must not move the
        // schedule.
        EXPECT_EQ(r.traceDigest, cleanDigest) << "threads=" << threads;
    }

    // Caught: every report names the planted channel and the address
    // origin, nothing else.
    ASSERT_FALSE(reports.front().violations.empty())
        << "probe not caught:\n" << reports.front().toString();
    for (const Violation& v : reports.front().violations) {
        EXPECT_EQ(v.kind, ViolationKind::EnvLeak);
        EXPECT_STREQ(v.channel, "idservice.pointer-tiebreak");
        EXPECT_STREQ(v.source, "address");
    }
    EXPECT_FALSE(reports.front().taintOverflow);

    // Deterministic: the rendered report is byte-identical across
    // 1/2/4/8 threads — sites, counts, labels, everything.
    const std::string rendered = reports.front().toString();
    for (std::size_t i = 1; i < reports.size(); ++i)
        EXPECT_EQ(reports[i].toString(), rendered) << "index " << i;
}

TEST_F(EnvAuditTest, ProbeLeaksAreInvisibleWithValueChecksOff)
{
    detsan::DetSanOptions opts;
    opts.checkValues = false;
    detsan::configure(opts);
    (void)runBfs(detCfg(2, /*probe=*/true));
    EXPECT_TRUE(detsan::takeReport().clean());
}

} // namespace
