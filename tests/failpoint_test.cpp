/**
 * @file
 * Unit tests for the deterministic fault-injection registry
 * (support/failpoint.h): plan matching, spec parsing, trigger
 * accounting, RAII scoping, and the wiring into graph I/O.
 *
 * End-to-end executor fault tests live in tests/resilience_test.cpp;
 * this file covers the subsystem itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <new>
#include <sstream>

#include "graph/io.h"
#include "support/failpoint.h"
#include "support/thread_pool.h"

using galois::support::FailPlan;
using galois::support::FailpointError;
namespace failpoints = galois::support::failpoints;

namespace {

class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoints::clearAll(); }
    void TearDown() override { failpoints::clearAll(); }

    /** Hits the site with keys [0, n) and returns the keys that threw. */
    std::vector<std::uint64_t>
    sweep(const char* site, std::uint64_t n)
    {
        std::vector<std::uint64_t> fired;
        for (std::uint64_t k = 0; k < n; ++k) {
            try {
                FAILPOINT(site, k);
            } catch (const FailpointError&) {
                fired.push_back(k);
            }
        }
        return fired;
    }
};

TEST_F(FailpointTest, UnarmedSiteIsSilent)
{
    EXPECT_TRUE(sweep("test.site", 100).empty());
    EXPECT_EQ(failpoints::triggerCount("test.site"), 0u);
}

TEST_F(FailpointTest, EqMatcherFiresOnExactKey)
{
    failpoints::set("test.site", FailPlan::throwAt(17));
    EXPECT_EQ(sweep("test.site", 100),
              (std::vector<std::uint64_t>{17}));
    EXPECT_EQ(failpoints::triggerCount("test.site"), 1u);
}

TEST_F(FailpointTest, GeMatcherFiresFromThresholdOn)
{
    failpoints::set("test.site",
                    FailPlan{FailPlan::Action::Throw,
                             FailPlan::Match::Ge, 97, 0});
    EXPECT_EQ(sweep("test.site", 100),
              (std::vector<std::uint64_t>{97, 98, 99}));
    EXPECT_EQ(failpoints::triggerCount("test.site"), 3u);
}

TEST_F(FailpointTest, ModMatcherFiresOnResidueClass)
{
    failpoints::set("test.site",
                    FailPlan{FailPlan::Action::Throw,
                             FailPlan::Match::Mod, 7, 3});
    EXPECT_EQ(sweep("test.site", 20),
              (std::vector<std::uint64_t>{3, 10, 17}));
}

TEST_F(FailpointTest, AlwaysMatcherFiresEveryTime)
{
    failpoints::set("test.site",
                    FailPlan{FailPlan::Action::Throw,
                             FailPlan::Match::Always, 0, 0});
    EXPECT_EQ(sweep("test.site", 5).size(), 5u);
}

TEST_F(FailpointTest, SitesAreIndependent)
{
    failpoints::set("test.a", FailPlan::throwAt(1));
    EXPECT_TRUE(sweep("test.b", 10).empty());
    EXPECT_EQ(sweep("test.a", 10),
              (std::vector<std::uint64_t>{1}));
}

TEST_F(FailpointTest, ErrorMessageIsDeterministic)
{
    failpoints::set("test.site", FailPlan::throwAt(42));
    std::string first, second;
    try {
        FAILPOINT("test.site", 42);
    } catch (const FailpointError& e) {
        first = e.what();
        EXPECT_EQ(e.site(), "test.site");
        EXPECT_EQ(e.key(), 42u);
    }
    try {
        FAILPOINT("test.site", 42);
    } catch (const FailpointError& e) {
        second = e.what();
    }
    EXPECT_EQ(first, "failpoint 'test.site' triggered (key=42)");
    EXPECT_EQ(first, second);
}

TEST_F(FailpointTest, BadAllocActionSimulatesAllocationFailure)
{
    failpoints::set("test.site", FailPlan::badAllocAt(3));
    EXPECT_NO_THROW(FAILPOINT("test.site", 2));
    EXPECT_THROW(FAILPOINT("test.site", 3), std::bad_alloc);
    EXPECT_EQ(failpoints::triggerCount("test.site"), 1u);
}

TEST_F(FailpointTest, ClearDisarmsOneSite)
{
    failpoints::set("test.a", FailPlan::throwAt(0));
    failpoints::set("test.b", FailPlan::throwAt(0));
    failpoints::clear("test.a");
    EXPECT_TRUE(sweep("test.a", 1).empty());
    EXPECT_EQ(sweep("test.b", 1).size(), 1u);
    EXPECT_EQ(failpoints::armedSites(),
              (std::vector<std::string>{"test.b"}));
}

TEST_F(FailpointTest, ScopedArmsAndDisarms)
{
    {
        failpoints::Scoped fp("test.site", FailPlan::throwAt(5));
        EXPECT_EQ(sweep("test.site", 10).size(), 1u);
    }
    EXPECT_TRUE(sweep("test.site", 10).empty());
}

TEST_F(FailpointTest, ParseSpecArmsEveryClause)
{
    ASSERT_TRUE(failpoints::parseSpec(
        "det.inspect=throw@eq:17;graph.readEdgeList=badalloc@ge:3;"
        "nondet.task=throw@mod:5:2;test.x=throw@always"));
    EXPECT_EQ(failpoints::armedSites().size(), 4u);
    EXPECT_EQ(sweep("det.inspect", 20),
              (std::vector<std::uint64_t>{17}));
    EXPECT_THROW(FAILPOINT("graph.readEdgeList", 3), std::bad_alloc);
    EXPECT_EQ(sweep("nondet.task", 10),
              (std::vector<std::uint64_t>{2, 7}));
}

TEST_F(FailpointTest, MalformedSpecArmsNothing)
{
    for (const char* bad :
         {"nosigns", "=throw@always", "a=explode@always", "a=throw@eq:",
          "a=throw@eq:12x", "a=throw@mod:5", "a=throw@mod:0:1",
          "a=throw", "a=throw@near:4", "good=throw@always;bad=zzz@1"}) {
        EXPECT_FALSE(failpoints::parseSpec(bad)) << bad;
        EXPECT_TRUE(failpoints::armedSites().empty()) << bad;
    }
    // Empty clauses are tolerated (trailing semicolons etc).
    EXPECT_TRUE(failpoints::parseSpec(";;"));
    EXPECT_TRUE(failpoints::armedSites().empty());
}

TEST_F(FailpointTest, ParseErrorsAreOneLineDiagnostics)
{
    // Each malformed spec maps to a diagnostic naming the clause and
    // the reason — the string a mistyped DETGALOIS_FAILPOINTS prints
    // before the process exits (never silent truncation).
    const std::pair<const char*, const char*> cases[] = {
        {"graph.io=throw@always", "unknown failpoint site"},
        {"frobnicate=throw@always", "unknown failpoint site"},
        {"test.x=explode@always", "unknown action"},
        {"test.x=throw@near:4", "unknown match"},
        {"test.x=throw@eq:12x", "bad key"},
        {"test.x=throw@mod:5", "mod match wants"},
        {"test.x=throw@always^", "bad trigger limit"},
        {"test.x=throw@always^0", "bad trigger limit"},
        {"test.x=throw@always^2x", "bad trigger limit"},
        {"nosigns", ""},
    };
    for (const auto& [spec, want] : cases) {
        const std::string err = failpoints::parseSpecError(spec);
        EXPECT_FALSE(err.empty()) << spec;
        EXPECT_NE(err.find("\"" + std::string(spec) + "\""),
                  std::string::npos)
            << spec << " -> " << err;
        if (*want)
            EXPECT_NE(err.find(want), std::string::npos)
                << spec << " -> " << err;
        EXPECT_EQ(err.find('\n'), std::string::npos) << err;
    }
    EXPECT_EQ(failpoints::parseSpecError(
                  "det.inspect=throw@eq:1;test.x=badalloc@ge:2^3"),
              "");
}

TEST_F(FailpointTest, KnownSitesIncludeRuntimeAndService)
{
    const auto sites = failpoints::knownSites();
    for (const char* site :
         {"det.inspect", "det.merge", "arena.chunk", "threadpool.spawn",
          "service.admit", "service.lane"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), site),
                  sites.end())
            << site;
    }
}

TEST_F(FailpointTest, TriggerLimitMakesFaultTransient)
{
    ASSERT_TRUE(failpoints::parseSpec("test.site=throw@always^2"));
    EXPECT_EQ(sweep("test.site", 10).size(), 2u); // quiet after 2
    EXPECT_EQ(failpoints::triggerCount("test.site"), 2u);
}

TEST_F(FailpointTest, TransientAtHelperFiresOnce)
{
    failpoints::set("test.site", FailPlan::transientAt(5));
    EXPECT_EQ(sweep("test.site", 10), (std::vector<std::uint64_t>{5}));
    EXPECT_TRUE(sweep("test.site", 10).empty());
    EXPECT_EQ(failpoints::triggerCount("test.site"), 1u);
}

// ---------------------------------------------------------------------
// Job scoping
// ---------------------------------------------------------------------

TEST_F(FailpointTest, JobScopeShadowsProcessRegistry)
{
    failpoints::set("test.site", FailPlan{FailPlan::Action::Throw,
                                          FailPlan::Match::Always, 0, 0});
    {
        failpoints::JobScope quiet; // empty scope: all plans suppressed
        EXPECT_TRUE(sweep("test.site", 5).empty());
        EXPECT_EQ(quiet.planCount(), 0u);
    }
    EXPECT_EQ(sweep("test.site", 5).size(), 5u); // registry restored
}

TEST_F(FailpointTest, JobScopePlansAndCountsAreScopeLocal)
{
    failpoints::JobScope scope("test.site=throw@eq:3");
    EXPECT_EQ(scope.planCount(), 1u);
    EXPECT_EQ(sweep("test.site", 10), (std::vector<std::uint64_t>{3}));
    EXPECT_EQ(scope.triggerCount("test.site"), 1u);
    // The process-wide counter never saw the scoped firing.
    EXPECT_EQ(failpoints::triggerCount("test.site"), 0u);
}

TEST_F(FailpointTest, JobScopeRejectsMalformedSpec)
{
    EXPECT_THROW(failpoints::JobScope("bogus.site=throw@always"),
                 std::invalid_argument);
    EXPECT_THROW(failpoints::JobScope("test.x=throw@always^0"),
                 std::invalid_argument);
    // A failed constructor must not leave a scope installed.
    failpoints::set("test.site", FailPlan::throwAt(0));
    EXPECT_EQ(sweep("test.site", 1).size(), 1u);
}

TEST_F(FailpointTest, JobScopeFollowsJobOntoPoolWorkers)
{
    auto& pool = galois::support::ThreadPool::get();
    const unsigned width = std::min(2u, pool.maxThreads());
    failpoints::JobScope scope("test.site=throw@always");
    std::atomic<unsigned> fired{0};
    pool.run(width, [&fired](unsigned tid) {
        try {
            FAILPOINT("test.site", tid);
        } catch (const FailpointError&) {
            fired.fetch_add(1);
        }
    });
    EXPECT_EQ(fired.load(), width);
    EXPECT_EQ(scope.triggerCount("test.site"), width);
}

TEST_F(FailpointTest, SetResetsTriggerCount)
{
    failpoints::set("test.site", FailPlan::throwAt(1));
    (void)sweep("test.site", 3);
    EXPECT_EQ(failpoints::triggerCount("test.site"), 1u);
    failpoints::set("test.site", FailPlan::throwAt(2));
    EXPECT_EQ(failpoints::triggerCount("test.site"), 0u);
}

TEST_F(FailpointTest, KeyOfIsIntegralValueOrZero)
{
    EXPECT_EQ(failpoints::keyOf(std::uint32_t(7)), 7u);
    EXPECT_EQ(failpoints::keyOf(char(3)), 3u);
    struct Opaque
    {
        int x;
    };
    EXPECT_EQ(failpoints::keyOf(Opaque{9}), 0u);
}

// ---------------------------------------------------------------------
// Wiring: graph I/O
// ---------------------------------------------------------------------

TEST_F(FailpointTest, EdgeListImportSurfacesInjectedAllocFailure)
{
    const std::string input = "0 1\n1 2\n2 3\n# comment\n3 4\n";
    {
        std::istringstream is(input);
        galois::graph::Node n = 0;
        auto edges = galois::graph::readEdgeList(is, n);
        ASSERT_TRUE(edges.has_value());
        EXPECT_EQ(edges->size(), 4u);
    }
    failpoints::Scoped fp("graph.readEdgeList", FailPlan::badAllocAt(2));
    std::istringstream is(input);
    galois::graph::Node n = 0;
    EXPECT_THROW((void)galois::graph::readEdgeList(is, n),
                 std::bad_alloc);
}

TEST_F(FailpointTest, DimacsImportSurfacesInjectedAllocFailure)
{
    const std::string input =
        "p max 3 2\nn 1 s\nn 3 t\na 1 2 5\na 2 3 4\n";
    {
        std::istringstream is(input);
        auto parsed = galois::graph::readDimacsMaxFlow(is);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->edges.size(), 4u); // arcs + residual twins
    }
    failpoints::Scoped fp("graph.readDimacs", FailPlan::badAllocAt(2));
    std::istringstream is(input);
    EXPECT_THROW((void)galois::graph::readDimacsMaxFlow(is),
                 std::bad_alloc);
}

} // namespace
