/**
 * @file
 * Unit tests for the geometry substrate: predicates, mesh structure,
 * cavity construction and retriangulation, segmented storage.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "geom/cavity.h"
#include "geom/mesh.h"
#include "geom/off_io.h"
#include "geom/point.h"
#include "support/prng.h"
#include "support/segmented_vector.h"
#include "support/thread_pool.h"

using namespace galois::geom;

TEST(Predicates, Orient2d)
{
    EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0); // CCW
    EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0); // CW
    EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0); // collinear
}

TEST(Predicates, InCircle)
{
    // Unit circle through (1,0), (0,1), (-1,0).
    const Point a{1, 0}, b{0, 1}, c{-1, 0};
    EXPECT_GT(inCircle(a, b, c, {0, 0}), 0);    // center: inside
    EXPECT_LT(inCircle(a, b, c, {2, 0}), 0);    // far away: outside
    EXPECT_EQ(inCircle(a, b, c, {0, -1}), 0);   // on the circle
    EXPECT_GT(inCircle(a, b, c, {0.5, 0.5}), 0);
}

TEST(Predicates, Circumcenter)
{
    const Point cc = circumcenter({0, 0}, {2, 0}, {0, 2});
    EXPECT_DOUBLE_EQ(cc.x, 1.0);
    EXPECT_DOUBLE_EQ(cc.y, 1.0);
}

TEST(Predicates, MinAngle)
{
    // Equilateral: 60 degrees everywhere.
    EXPECT_NEAR(minAngleDeg({0, 0}, {1, 0}, {0.5, 0.8660254037844386}),
                60.0, 1e-9);
    // Right isoceles: 45.
    EXPECT_NEAR(minAngleDeg({0, 0}, {1, 0}, {0, 1}), 45.0, 1e-9);
    // Very flat triangle: tiny angle.
    EXPECT_LT(minAngleDeg({0, 0}, {1, 0}, {0.5, 0.01}), 3.0);
}

TEST(SegmentedVector, StableUnderConcurrentAppend)
{
    galois::support::SegmentedVector<int> v;
    constexpr int kPerThread = 5000;
    galois::support::ThreadPool::get().run(4, [&](unsigned tid) {
        for (int i = 0; i < kPerThread; ++i)
            v.emplaceBack(static_cast<int>(tid) * kPerThread + i);
    });
    ASSERT_EQ(v.size(), 4u * kPerThread);
    // Every value present exactly once.
    std::vector<int> seen(4 * kPerThread, 0);
    for (std::size_t i = 0; i < v.size(); ++i)
        ++seen[v[i]];
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

namespace {

/** Two CCW triangles sharing edge (1, 2): (0,1,2) and (2,1,3). */
void
makeQuad(Mesh& m)
{
    m.addVertex({0, 0}); // 0
    m.addVertex({1, 0}); // 1
    m.addVertex({0, 1}); // 2
    m.addVertex({1, 1}); // 3
    const TriId t0 = m.createTriangle(0, 1, 2);
    const TriId t1 = m.createTriangle(2, 1, 3);
    const int e0 = m.findEdge(t0, 1, 2);
    const int e1 = m.findEdge(t1, 1, 2);
    m.setNeighbor(t0, e0, t1);
    m.setNeighbor(t1, e1, t0);
}

} // namespace

TEST(Mesh, EdgeConventionsAndConsistency)
{
    Mesh m;
    makeQuad(m);
    EXPECT_TRUE(m.checkConsistency());
    EXPECT_EQ(m.numAliveTriangles(), 2u);
    EXPECT_EQ(m.findEdge(0, 0, 1), 2); // edge opposite vertex index 2
    EXPECT_TRUE(m.contains(0, {0.2, 0.2}));
    EXPECT_FALSE(m.contains(0, {0.9, 0.9}));
    EXPECT_TRUE(m.contains(1, {0.9, 0.9}));
}

TEST(Mesh, ConsistencyDetectsBrokenLinks)
{
    Mesh m;
    makeQuad(m);
    // Break symmetry: t0 points at t1 but t1 points nowhere.
    m.setNeighbor(1, m.findEdge(1, 1, 2), kNoTri);
    EXPECT_FALSE(m.checkConsistency());
}

TEST(Mesh, DelaunayCheck)
{
    // The quad split along (1,2) is Delaunay for the unit square (both
    // opposite vertices lie exactly on the circumcircles — not strictly
    // inside).
    Mesh m;
    makeQuad(m);
    EXPECT_TRUE(m.checkDelaunay());
}

TEST(Mesh, GeometricHashIsIdOrderInvariant)
{
    Mesh a;
    makeQuad(a);
    // Same geometry, triangles created in the other order with rotated
    // vertex lists.
    Mesh b;
    b.addVertex({1, 1});
    b.addVertex({0, 1});
    b.addVertex({1, 0});
    b.addVertex({0, 0});
    const TriId t1 = b.createTriangle(2, 0, 1); // (1,0),(1,1),(0,1)
    const TriId t0 = b.createTriangle(3, 2, 1); // (0,0),(1,0),(0,1)
    const int e0 = b.findEdge(t0, 2, 1);
    const int e1 = b.findEdge(t1, 2, 1);
    b.setNeighbor(t0, e0, t1);
    b.setNeighbor(t1, e1, t0);
    ASSERT_TRUE(b.checkConsistency());
    EXPECT_EQ(a.geometricHash(), b.geometricHash());
}

TEST(Cavity, BuildAndRetriangulateInterior)
{
    // Square split into two triangles; insert the center point: both
    // triangles die (center is inside both circumcircles) and a 4-fan
    // appears.
    Mesh m;
    makeQuad(m);
    const Point center{0.5, 0.5};
    Cavity cav;
    int acquired = 0;
    const bool ok = buildCavity(
        m, 0, center, cav, [&](TriId) { ++acquired; }, false);
    ASSERT_TRUE(ok);
    EXPECT_EQ(cav.dead.size(), 2u);
    EXPECT_EQ(cav.border.size(), 4u);
    EXPECT_EQ(acquired, 2);

    const VertId nv = m.addVertex(center);
    std::vector<TriId> created;
    retriangulate(m, cav, nv, created);
    EXPECT_EQ(created.size(), 4u);
    EXPECT_TRUE(m.checkConsistency());
    EXPECT_TRUE(m.checkDelaunay());
    EXPECT_EQ(m.numAliveTriangles(), 4u);
}

TEST(Cavity, EscapeDetection)
{
    // A single skinny triangle whose circumcenter lies outside it, past
    // the boundary: expansion must report the escape edge.
    Mesh m;
    m.addVertex({0, 0});
    m.addVertex({1, 0});
    m.addVertex({0.5, 0.05});
    const TriId t = m.createTriangle(0, 1, 2);
    const Point cc = m.circumcenterOf(t);
    EXPECT_LT(cc.y, 0.0); // circumcenter below the base edge

    Cavity cav;
    const bool ok = buildCavity(m, t, cc, cav, [](TriId) {}, true);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(cav.escaped);
    EXPECT_EQ(cav.escapeTri, t);
    // The escape edge is the base (0 -> 1), i.e. the edge opposite
    // vertex 2.
    const auto [a, b] = m.edgeVerts(t, cav.escapeEdge);
    EXPECT_TRUE((a == 0 && b == 1) || (a == 1 && b == 0));
}

TEST(Cavity, BoundarySplitLeavesOpenEdges)
{
    // Splitting the base edge of the skinny triangle: the midpoint lies
    // on the boundary; the fan must leave the two half-segments open.
    Mesh m;
    m.addVertex({0, 0});
    m.addVertex({1, 0});
    m.addVertex({0.5, 0.05});
    const TriId t = m.createTriangle(0, 1, 2);
    const Point mid = midpoint({0, 0}, {1, 0});

    Cavity cav;
    ASSERT_TRUE(buildCavity(m, t, mid, cav, [](TriId) {}, true));
    const VertId nv = m.addVertex(mid);
    std::vector<TriId> created;
    retriangulate(m, cav, nv, created);
    EXPECT_EQ(created.size(), 2u);
    EXPECT_TRUE(m.checkConsistency());
    // Each new triangle has exactly two boundary edges (a half-segment
    // and one original side).
    for (TriId c : created) {
        int boundary = 0;
        for (int i = 0; i < 3; ++i)
            if (m.tri(c).nbr[i] == kNoTri)
                ++boundary;
        EXPECT_EQ(boundary, 2);
    }
}

TEST(Submesh, ExtractionDropsMarkedVertices)
{
    // Quad plus a triangle hanging off vertex 0; drop vertices < 1.
    Mesh m;
    makeQuad(m);
    ASSERT_TRUE(m.checkConsistency());
    Mesh sub;
    extractAliveSubmesh(m, 1, sub);
    // Only triangle (2,1,3) avoids vertex 0.
    EXPECT_EQ(sub.numAliveTriangles(), 1u);
    EXPECT_TRUE(sub.checkConsistency());
}

TEST(OffIo, RoundTrip)
{
    Mesh m;
    makeQuad(m);
    std::stringstream ss;
    writeOff(ss, m);

    Mesh back;
    ASSERT_TRUE(readOff(ss, back));
    EXPECT_EQ(back.numAliveTriangles(), 2u);
    EXPECT_TRUE(back.checkConsistency());
    EXPECT_EQ(back.geometricHash(), m.geometricHash());
}

TEST(OffIo, RejectsMalformedInput)
{
    {
        std::stringstream ss("NOT_OFF 1 2 3");
        Mesh m;
        EXPECT_FALSE(readOff(ss, m));
    }
    {
        std::stringstream ss("OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n4 0 1 2");
        Mesh m;
        EXPECT_FALSE(readOff(ss, m)); // non-triangular face
    }
    {
        std::stringstream ss("OFF\n2 1 0\n0 0 0\n1 0 0\n3 0 1 5");
        Mesh m;
        EXPECT_FALSE(readOff(ss, m)); // vertex index out of range
    }
}

TEST(OffIo, FixesOrientationOnRead)
{
    // A clockwise face must come back CCW.
    std::stringstream ss("OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 2 1");
    Mesh m;
    ASSERT_TRUE(readOff(ss, m));
    EXPECT_TRUE(m.checkConsistency()); // consistency includes CCW
}

TEST(Cavity, RandomIncrementalInsertionFuzz)
{
    // Serial Bowyer-Watson through the cavity API directly, validating
    // structure + Delaunay property as the mesh grows. Exercises
    // retriangulate's linking on hundreds of random cavities.
    galois::support::Prng rng(0xfeed);
    Mesh m;
    m.addVertex({-1e6, -1e6});
    m.addVertex({1e6, -1e6});
    m.addVertex({0, 1e6});
    TriId where = m.createTriangle(0, 1, 2);

    for (int i = 0; i < 400; ++i) {
        const Point p{rng.nextDouble(), rng.nextDouble()};
        // Locate by scanning live triangles (fine at this scale).
        TriId container = kNoTri;
        for (TriId t : m.aliveTriangles()) {
            if (m.contains(t, p)) {
                container = t;
                break;
            }
        }
        ASSERT_NE(container, kNoTri) << "insertion " << i;
        Cavity cav;
        ASSERT_TRUE(buildCavity(m, container, p, cav, [](TriId) {},
                                false));
        const VertId nv = m.addVertex(p);
        std::vector<TriId> created;
        retriangulate(m, cav, nv, created);
        ASSERT_GE(created.size(), 3u);
        if (i % 50 == 0 || i == 399) {
            ASSERT_TRUE(m.checkConsistency()) << "insertion " << i;
            ASSERT_TRUE(m.checkDelaunay(3)) << "insertion " << i;
        }
    }
    EXPECT_EQ(m.numAliveTriangles(), 2u * (400 + 3) - 5);
    (void)where;
}

TEST(Mesh, CircumcenterIsEquidistantFromVertices)
{
    galois::support::Prng rng(0xcafe);
    for (int i = 0; i < 200; ++i) {
        Point a{rng.nextDouble(), rng.nextDouble()};
        Point b{rng.nextDouble(), rng.nextDouble()};
        Point c{rng.nextDouble(), rng.nextDouble()};
        if (orient2d(a, b, c) == 0)
            continue; // skip degenerate triples
        const Point cc = circumcenter(a, b, c);
        const double ra = dist2(cc, a);
        EXPECT_NEAR(dist2(cc, b), ra, 1e-6 * (1 + ra));
        EXPECT_NEAR(dist2(cc, c), ra, 1e-6 * (1 + ra));
    }
}

TEST(Mesh, AnglesOfRandomTrianglesSumTo180)
{
    galois::support::Prng rng(0xbead);
    for (int i = 0; i < 200; ++i) {
        Point a{rng.nextDouble(), rng.nextDouble()};
        Point b{rng.nextDouble(), rng.nextDouble()};
        Point c{rng.nextDouble(), rng.nextDouble()};
        if (std::abs(orient2d(a, b, c)) < 1e-6)
            continue;
        // minAngleDeg computes two corners and derives the third: it
        // must always land in (0, 60].
        const double m = minAngleDeg(a, b, c);
        EXPECT_GT(m, 0.0);
        EXPECT_LE(m, 60.0 + 1e-9);
    }
}
