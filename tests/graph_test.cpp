/**
 * @file
 * Unit tests for the CSR graph and the deterministic input generators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <set>

#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/io.h"

using namespace galois::graph;

TEST(CsrGraph, BuildsAdjacency)
{
    // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
    std::vector<Edge> edges{{0, 1, 10}, {0, 2, 20}, {1, 2, 30}, {2, 0, 40}};
    CsrGraph<int> g(3, edges);
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(g.dst(g.edgeBegin(0)), 1u);
    EXPECT_EQ(g.dst(g.edgeBegin(0) + 1), 2u);
    EXPECT_EQ(g.edgeData(g.edgeBegin(2)), 40);
    auto nbrs = g.neighbors(0);
    EXPECT_EQ(nbrs.size(), 2u);
}

TEST(CsrGraph, NodeDataAndLocks)
{
    std::vector<Edge> edges{{0, 1, 0}};
    CsrGraph<long> g(2, edges);
    g.data(0) = 7;
    g.data(1) = 8;
    EXPECT_EQ(g.data(0), 7);
    EXPECT_EQ(g.data(1), 8);
    // Locks start unowned.
    EXPECT_EQ(g.lock(0).owner(), nullptr);
    EXPECT_EQ(g.lock(1).owner(), nullptr);
}

TEST(CsrGraph, ReverseEdgeTwins)
{
    std::vector<Edge> edges{{0, 1, 5}, {1, 0, 0}, {1, 2, 7}, {2, 1, 0}};
    CsrGraph<int> g(3, edges, /*find_reverse=*/true);
    for (Node u = 0; u < g.numNodes(); ++u) {
        for (std::uint64_t e = g.edgeBegin(u); e < g.edgeEnd(u); ++e) {
            const std::uint64_t r = g.reverseEdge(e);
            EXPECT_EQ(g.dst(r), u);
            EXPECT_EQ(g.reverseEdge(r), e);
        }
    }
}

TEST(Generators, KOutDegreesAndDeterminism)
{
    const auto e1 = randomKOut(100, 5, 42, /*symmetric=*/false);
    const auto e2 = randomKOut(100, 5, 42, /*symmetric=*/false);
    ASSERT_EQ(e1.size(), 500u);
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].src, e2[i].src);
        EXPECT_EQ(e1[i].dst, e2[i].dst);
    }
    // No self loops; per-node neighbor sets are distinct.
    for (std::size_t i = 0; i < e1.size(); i += 5) {
        std::set<Node> nbrs;
        for (std::size_t j = i; j < i + 5; ++j) {
            EXPECT_NE(e1[j].src, e1[j].dst);
            nbrs.insert(e1[j].dst);
        }
        EXPECT_EQ(nbrs.size(), 5u);
    }
    // Different seed differs.
    const auto e3 = randomKOut(100, 5, 43, false);
    bool any_diff = false;
    for (std::size_t i = 0; i < e1.size(); ++i)
        any_diff |= e1[i].dst != e3[i].dst;
    EXPECT_TRUE(any_diff);
}

TEST(Generators, SymmetricContainsBothDirections)
{
    const auto edges = randomKOut(50, 3, 7, /*symmetric=*/true);
    EXPECT_EQ(edges.size(), 300u);
    std::multiset<std::pair<Node, Node>> all;
    for (const Edge& e : edges)
        all.insert({e.src, e.dst});
    for (const Edge& e : edges)
        EXPECT_TRUE(all.count({e.dst, e.src}) > 0);
}

TEST(Generators, FlowNetworkCapacities)
{
    const auto edges = randomFlowNetwork(64, 4, 100, 99);
    // Random k-out part + the dedicated source/sink fan arcs.
    EXPECT_GT(edges.size(), 64u * 4 * 2);
    const std::size_t base = 64u * 4 * 2;
    for (std::size_t i = 0; i < edges.size(); i += 2) {
        EXPECT_GE(edges[i].data, 1);
        EXPECT_LE(edges[i].data, i < base ? 100 : 400);
        EXPECT_EQ(edges[i + 1].data, 0);
        EXPECT_EQ(edges[i].src, edges[i + 1].dst);
        EXPECT_EQ(edges[i].dst, edges[i + 1].src);
    }
    // The fan arcs attach to the source (0) and the sink (63).
    bool fan_src = false, fan_sink = false;
    for (std::size_t i = base; i < edges.size(); i += 2) {
        fan_src |= edges[i].src == 0;
        fan_sink |= edges[i].dst == 63;
    }
    EXPECT_TRUE(fan_src);
    EXPECT_TRUE(fan_sink);
    // CSR with reverse twins must build successfully.
    CsrGraph<int> g(64, edges, /*find_reverse=*/true);
    EXPECT_EQ(g.numEdges(), edges.size());
}

TEST(GraphIo, EdgeListRoundTrip)
{
    std::stringstream ss("# comment\n0 1 5\n1 2\n2 0 7\n");
    Node n = 0;
    auto edges = readEdgeList(ss, n);
    ASSERT_TRUE(edges.has_value());
    EXPECT_EQ(n, 3u);
    ASSERT_EQ(edges->size(), 3u);
    EXPECT_EQ((*edges)[0].data, 5);
    EXPECT_EQ((*edges)[1].data, 0);
    EXPECT_EQ((*edges)[2].src, 2u);
}

TEST(GraphIo, EdgeListRejectsGarbage)
{
    std::stringstream ss("0 x\n");
    Node n = 0;
    EXPECT_FALSE(readEdgeList(ss, n).has_value());
}

TEST(GraphIo, DimacsMaxFlowRoundTrip)
{
    std::stringstream ss(
        "c tiny instance\n"
        "p max 4 5\n"
        "n 1 s\n"
        "n 4 t\n"
        "a 1 2 3\n"
        "a 1 3 5\n"
        "a 2 4 3\n"
        "a 3 4 5\n"
        "a 2 3 1\n");
    auto parsed = readDimacsMaxFlow(ss);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->numNodes, 4u);
    EXPECT_EQ(parsed->source, 0u);
    EXPECT_EQ(parsed->sink, 3u);
    EXPECT_EQ(parsed->edges.size(), 10u); // arcs + residual twins

    CsrGraph<int> g(parsed->numNodes, parsed->edges,
                    /*find_reverse=*/true);
    std::stringstream out;
    writeDimacsMaxFlow(out, g, parsed->source, parsed->sink);
    auto again = readDimacsMaxFlow(out);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->numNodes, parsed->numNodes);
    EXPECT_EQ(again->edges.size(), parsed->edges.size());
}

TEST(GraphIo, DimacsRejectsMalformed)
{
    {
        std::stringstream ss("p min 4 5\n");
        EXPECT_FALSE(readDimacsMaxFlow(ss).has_value());
    }
    {
        std::stringstream ss("p max 2 1\nn 1 s\nn 2 t\na 1 9 5\n");
        EXPECT_FALSE(readDimacsMaxFlow(ss).has_value()); // bad node id
    }
    {
        std::stringstream ss("p max 2 0\nn 1 s\n");
        EXPECT_FALSE(readDimacsMaxFlow(ss).has_value()); // no sink
    }
}
