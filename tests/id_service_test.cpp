/**
 * @file
 * Unit tests for deterministic id assignment (runtime/id_service.h):
 * lexicographic (parentId, birthRank) ranking and 1..n renumbering,
 * pre-assigned user-id passthrough, and the round-robin locality spread.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/id_service.h"

using galois::runtime::IdService;
using galois::runtime::PendingTask;

namespace {

template <typename T>
std::vector<std::pair<T, std::uint64_t>>
collect(const IdService& svc, std::vector<PendingTask<T>> pending)
{
    std::vector<std::pair<T, std::uint64_t>> out;
    svc.assign(pending, [&](PendingTask<T>&& t, std::uint64_t id) {
        out.emplace_back(std::move(t.item), id);
    });
    EXPECT_TRUE(pending.empty());
    return out;
}

} // namespace

TEST(IdService, RanksByParentIdThenBirthRank)
{
    // Arrival order scrambled; (parentId, birthRank) dictates the ids.
    std::vector<PendingTask<char>> pending = {
        {'d', 3, 0}, {'b', 1, 1}, {'a', 1, 0}, {'c', 2, 5},
    };
    auto out = collect(IdService(), std::move(pending));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], std::make_pair('a', std::uint64_t(1)));
    EXPECT_EQ(out[1], std::make_pair('b', std::uint64_t(2)));
    EXPECT_EQ(out[2], std::make_pair('c', std::uint64_t(3)));
    EXPECT_EQ(out[3], std::make_pair('d', std::uint64_t(4)));
}

TEST(IdService, IdsAreDenseFromOne)
{
    std::vector<PendingTask<int>> pending;
    for (int i = 99; i >= 0; --i)
        pending.push_back({i, static_cast<std::uint64_t>(i), 0});
    auto out = collect(IdService(), std::move(pending));
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].second, i + 1);
}

TEST(IdService, PreassignedUserIdsPassThroughInOrder)
{
    // The executor encodes user-assigned ids as (parentId = userId,
    // birthRank = 0); the sort must then reproduce the user's order
    // regardless of arrival order, with dense renumbering on top.
    std::vector<PendingTask<std::string>> pending = {
        {"third", 300, 0}, {"first", 17, 0}, {"second", 205, 0},
    };
    auto out = collect(IdService(), std::move(pending));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].first, "first");
    EXPECT_EQ(out[1].first, "second");
    EXPECT_EQ(out[2].first, "third");
    EXPECT_EQ(out[2].second, 3u);
}

TEST(IdService, ResultIndependentOfSortThreadCount)
{
    std::vector<PendingTask<int>> base;
    // Large enough to cross the parallel sort's serial cutoff.
    for (int i = 0; i < 40000; ++i)
        base.push_back({i,
                        static_cast<std::uint64_t>((i * 7919) % 1000),
                        static_cast<std::uint64_t>(i)});
    auto serial = collect(IdService(1, 1), base);
    auto parallel = collect(IdService(1, 8), base);
    EXPECT_EQ(serial, parallel);
}

TEST(IdService, SpreadDealsRoundRobinIntoBuckets)
{
    // 7 tasks in sorted order a..g, 3 buckets: positions are dealt
    // column-major — bucket 0 takes sorted positions 0,3,6; bucket 1
    // takes 1,4; bucket 2 takes 2,5. Ids follow that dealing order.
    std::vector<PendingTask<char>> pending;
    for (char c = 'a'; c <= 'g'; ++c)
        pending.push_back({c, static_cast<std::uint64_t>(c), 0});
    auto out = collect(IdService(/*spread_buckets=*/3), std::move(pending));
    ASSERT_EQ(out.size(), 7u);
    const char expected[] = {'a', 'd', 'g', 'b', 'e', 'c', 'f'};
    for (std::size_t i = 0; i < 7; ++i) {
        EXPECT_EQ(out[i].first, expected[i]) << "position " << i;
        EXPECT_EQ(out[i].second, i + 1);
    }
}

TEST(IdService, SpreadSeparatesAdjacentTasksByAboutNOverBuckets)
{
    const int n = 1000;
    const std::uint64_t buckets = 10;
    std::vector<PendingTask<int>> pending;
    for (int i = 0; i < n; ++i)
        pending.push_back({i, static_cast<std::uint64_t>(i), 0});
    auto out = collect(IdService(buckets), std::move(pending));
    std::vector<std::uint64_t> idOf(n);
    for (auto& [item, id] : out)
        idOf[static_cast<std::size_t>(item)] = id;
    // Tasks adjacent in sorted order land ~n/buckets apart in id order
    // (so a window smaller than that puts them in different rounds).
    for (int i = 0; i + 1 < n; ++i) {
        const std::uint64_t a = idOf[static_cast<std::size_t>(i)];
        const std::uint64_t b = idOf[static_cast<std::size_t>(i + 1)];
        const std::uint64_t gap = a < b ? b - a : a - b;
        EXPECT_GE(gap, static_cast<std::uint64_t>(n) / buckets - 1)
            << "adjacent pair " << i;
    }
}

TEST(IdService, BucketCountClampedToAtLeastOne)
{
    IdService svc(/*spread_buckets=*/0);
    EXPECT_EQ(svc.spreadBuckets(), 1u);
    std::vector<PendingTask<int>> pending = {{5, 1, 0}, {6, 2, 0}};
    auto out = collect(svc, std::move(pending));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].first, 5);
    EXPECT_EQ(out[1].first, 6);
}

TEST(IdService, EmptyPendingEmitsNothing)
{
    auto out = collect(IdService(61, 4), std::vector<PendingTask<int>>{});
    EXPECT_TRUE(out.empty());
}
