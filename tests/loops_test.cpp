/**
 * @file
 * Tests for the data-parallel companions (doAll, Reducible), the report
 * renderers, and executor failure injection: user exceptions must
 * propagate out of every executor exactly once and leave the thread pool
 * reusable.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "galois/galois.h"
#include "galois/loops.h"
#include "runtime/report_io.h"

using namespace galois;

// ---------------------------------------------------------------------
// doAll
// ---------------------------------------------------------------------

TEST(DoAll, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        constexpr std::size_t n = 10007; // prime: uneven blocks
        std::vector<std::atomic<int>> hits(n);
        doAll(n, threads, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(DoAll, EmptyAndSingleton)
{
    int calls = 0;
    doAll(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    doAll(1, 4, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------
// Reducible
// ---------------------------------------------------------------------

TEST(Reducible, SumAcrossThreads)
{
    Reducible<long> sum;
    doAll(1000, 4, [&](std::size_t i) {
        sum.update(static_cast<long>(i));
    });
    EXPECT_EQ(sum.reduce(), 999L * 1000 / 2);
    // reduce() resets.
    EXPECT_EQ(sum.reduce(), 0L);
}

TEST(Reducible, MinMax)
{
    Reducible<int, MinOf<int>> lo(1 << 30);
    Reducible<int, MaxOf<int>> hi(-(1 << 30));
    doAll(512, 4, [&](std::size_t i) {
        lo.update(static_cast<int>(i) - 100);
        hi.update(static_cast<int>(i) - 100);
    });
    EXPECT_EQ(lo.reduce(), -100);
    EXPECT_EQ(hi.reduce(), 411);
}

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

TEST(ReportIo, PrintAndCsv)
{
    runtime::RunReport r;
    r.threads = 4;
    r.seconds = 0.125;
    r.committed = 1000;
    r.aborted = 50;
    r.rounds = 7;

    std::ostringstream os;
    runtime::printReport(os, r, "test-run");
    const std::string text = os.str();
    EXPECT_NE(text.find("test-run"), std::string::npos);
    EXPECT_NE(text.find("committed      : 1000"), std::string::npos);
    EXPECT_NE(text.find("rounds         : 7"), std::string::npos);

    const std::string row = runtime::reportCsvRow(r, "bfs");
    EXPECT_EQ(row.substr(0, 6), "bfs,4,");
    // Header and row have the same number of fields.
    const auto commas = [](const std::string& s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(runtime::reportCsvHeader()), commas(row));
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

namespace {

struct AppError : std::runtime_error
{
    AppError() : std::runtime_error("operator failure") {}
};

} // namespace

class ExecutorFailureInjection : public ::testing::TestWithParam<Exec>
{};

TEST_P(ExecutorFailureInjection, UserExceptionPropagatesAndPoolSurvives)
{
    std::vector<Lockable> locks(8);
    std::vector<int> init(100);
    for (int i = 0; i < 100; ++i)
        init[i] = i;

    Config cfg;
    cfg.exec = GetParam();
    cfg.threads = 4;

    EXPECT_THROW(
        forEach(
            init,
            [&](int& i, Context<int>& ctx) {
                ctx.acquire(locks[i % 8]);
                ctx.cautiousPoint();
                if (i == 57)
                    throw AppError();
            },
            cfg),
        AppError);

    // The runtime must remain fully usable afterwards.
    std::atomic<int> done{0};
    auto report = forEach(
        init,
        [&](int& i, Context<int>& ctx) {
            ctx.acquire(locks[i % 8]);
            ctx.cautiousPoint();
            done.fetch_add(1);
        },
        cfg);
    EXPECT_EQ(report.committed, 100u);
    EXPECT_EQ(done.load(), 100);
}

INSTANTIATE_TEST_SUITE_P(AllExecutors, ExecutorFailureInjection,
                         ::testing::Values(Exec::Serial, Exec::NonDet,
                                           Exec::Det));
