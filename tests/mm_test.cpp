/**
 * @file
 * Tests for the maximal-matching extension app (Lonestar-style Galois
 * operator + PBBS-style deterministic reservations).
 */

#include <gtest/gtest.h>

#include "apps/mm.h"
#include "pbbs/det_mm.h"

using namespace galois;

namespace {

Config
makeCfg(Exec exec, unsigned threads)
{
    Config cfg;
    cfg.exec = exec;
    cfg.threads = threads;
    return cfg;
}

} // namespace

TEST(Mm, SerialGreedyIsValid)
{
    auto prob = apps::mm::makeProblem(2000, 4, 301);
    apps::mm::serialMatch(prob);
    EXPECT_TRUE(apps::mm::isMaximalMatching(prob));
    EXPECT_GT(apps::mm::matchedEdges(prob).size(), 0u);
}

TEST(Mm, AllExecutorsProduceValidMatchings)
{
    auto prob = apps::mm::makeProblem(2000, 4, 302);
    for (auto [exec, threads] :
         {std::pair{Exec::Serial, 1u}, std::pair{Exec::NonDet, 4u},
          std::pair{Exec::Det, 1u}, std::pair{Exec::Det, 4u}}) {
        apps::mm::galoisMatch(prob, makeCfg(exec, threads));
        EXPECT_TRUE(apps::mm::isMaximalMatching(prob))
            << "exec " << static_cast<int>(exec) << " threads "
            << threads;
    }
}

TEST(Mm, DetOutputIsThreadCountInvariant)
{
    auto prob = apps::mm::makeProblem(3000, 5, 303);
    apps::mm::galoisMatch(prob, makeCfg(Exec::Det, 1));
    const auto ref = apps::mm::matchedEdges(prob);
    for (unsigned t : {2u, 4u, 8u}) {
        apps::mm::galoisMatch(prob, makeCfg(Exec::Det, t));
        EXPECT_EQ(apps::mm::matchedEdges(prob), ref)
            << t << " threads";
    }
}

TEST(Mm, PbbsEqualsSequentialGreedy)
{
    auto prob = apps::mm::makeProblem(3000, 5, 304);
    apps::mm::serialMatch(prob);
    const auto greedy = apps::mm::matchedEdges(prob);
    for (unsigned t : {1u, 4u}) {
        for (std::size_t round : {64ul, 4096ul}) {
            auto stats = pbbs::detMatch(prob, t, round);
            EXPECT_TRUE(apps::mm::isMaximalMatching(prob));
            EXPECT_EQ(apps::mm::matchedEdges(prob), greedy)
                << t << " threads, round " << round;
            EXPECT_GT(stats.committed, 0u);
        }
    }
}

TEST(Mm, SelfLoopsNeverMatch)
{
    apps::mm::Problem prob;
    prob.numNodes = 3;
    prob.edges = {{0, 0}, {0, 1}, {1, 2}};
    prob.reset();
    apps::mm::serialMatch(prob);
    EXPECT_TRUE(apps::mm::isMaximalMatching(prob));
    EXPECT_EQ(prob.inMatching[0], 0);
    EXPECT_EQ(prob.inMatching[1], 1); // (0,1) matches first
    EXPECT_EQ(prob.inMatching[2], 0); // 1 already matched

    apps::mm::galoisMatch(prob, makeCfg(Exec::Det, 2));
    EXPECT_TRUE(apps::mm::isMaximalMatching(prob));
    EXPECT_EQ(prob.inMatching[0], 0);
}
