/**
 * @file
 * Tests for the PARSEC-style kernels: numerical correctness, parallel /
 * serial agreement, and behavior under the deterministic scheduler.
 */

#include <gtest/gtest.h>

#include "coredet/coredet.h"
#include "parsec/blackscholes.h"
#include "parsec/bodytrack_like.h"
#include "parsec/freqmine_like.h"

using namespace galois;
using coredet::DmpScheduler;
using coredet::RawScheduler;

TEST(Blackscholes, KnownValues)
{
    // Canonical textbook case: S=100, K=100, r=5%, sigma=20%, T=1.
    parsec::Option call{100, 100, 0.05, 0.2, 1.0, false};
    parsec::Option put{100, 100, 0.05, 0.2, 1.0, true};
    EXPECT_NEAR(parsec::priceOption(call), 10.4506, 5e-3);
    EXPECT_NEAR(parsec::priceOption(put), 5.5735, 5e-3);
    // Put-call parity: C - P = S - K e^{-rT}.
    EXPECT_NEAR(parsec::priceOption(call) - parsec::priceOption(put),
                100 - 100 * std::exp(-0.05), 1e-9);
}

TEST(Blackscholes, ParallelMatchesSerial)
{
    const auto portfolio = parsec::randomPortfolio(5000, 101);
    std::vector<double> serial_prices, parallel_prices;
    RawScheduler one(1), four(4);
    const double serial = priceAll(one, portfolio, 1, serial_prices);
    const double parallel = priceAll(four, portfolio, 1, parallel_prices);
    EXPECT_EQ(serial_prices, parallel_prices); // bitwise: disjoint writes
    EXPECT_DOUBLE_EQ(serial, parallel);
}

TEST(Blackscholes, DeterministicUnderDmp)
{
    const auto portfolio = parsec::randomPortfolio(2000, 102);
    std::vector<double> p1, p2;
    DmpScheduler a(4, 1000), b(4, 1000);
    priceAll(a, portfolio, 1, p1);
    priceAll(b, portfolio, 1, p2);
    EXPECT_EQ(p1, p2);
    // Few syncs relative to work: the coarse-grain profile of Fig. 5.
    EXPECT_LT(a.stats().syncOps, portfolio.size() / 100);
}

TEST(BodytrackLike, TracksTheTrajectory)
{
    const auto prob = parsec::makeTrackingProblem(40, 111);
    RawScheduler sched(4);
    const auto res = trackBody(sched, prob, 512, 112);
    ASSERT_EQ(res.estimates.size(), 40u);
    // The filter should stay close to the observations.
    EXPECT_LT(res.meanError, 0.2);
}

TEST(BodytrackLike, ParallelMatchesSerial)
{
    const auto prob = parsec::makeTrackingProblem(20, 113);
    RawScheduler one(1), four(4);
    const auto a = trackBody(one, prob, 256, 114);
    const auto b = trackBody(four, prob, 256, 114);
    // Per-particle noise streams make the computation schedule-
    // independent: results are bitwise equal.
    ASSERT_EQ(a.estimates.size(), b.estimates.size());
    for (std::size_t f = 0; f < a.estimates.size(); ++f)
        for (int d = 0; d < parsec::TrackingProblem::kDims; ++d)
            EXPECT_DOUBLE_EQ(a.estimates[f][d], b.estimates[f][d]);
}

TEST(FreqmineLike, CountsAreExact)
{
    // Tiny handmade database.
    parsec::ItemsetDb db;
    db.numItems = 4;
    db.transactions = {{0, 1}, {0, 1, 2}, {0, 2}, {1, 2}, {0, 1, 3}};
    RawScheduler sched(2);
    const auto res = mineFrequent(sched, db, 3);
    EXPECT_EQ(res.itemSupport[0], 4u);
    EXPECT_EQ(res.itemSupport[1], 4u);
    EXPECT_EQ(res.itemSupport[2], 3u);
    EXPECT_EQ(res.itemSupport[3], 1u);
    EXPECT_EQ(res.frequentItems, 3u); // items 0, 1, 2
    // Pair (0,1) appears 3 times — the only frequent pair.
    EXPECT_EQ(res.frequentPairs, 1u);
    EXPECT_EQ(res.pairSupport.at((0ULL << 32) | 1), 3u);
}

TEST(FreqmineLike, ParallelMatchesSerial)
{
    const auto db = parsec::makeItemsetDb(3000, 200, 8, 121);
    RawScheduler one(1), four(4);
    const auto a = mineFrequent(one, db, 30);
    const auto b = mineFrequent(four, db, 30);
    EXPECT_EQ(a.itemSupport, b.itemSupport);
    EXPECT_EQ(a.frequentItems, b.frequentItems);
    EXPECT_EQ(a.frequentPairs, b.frequentPairs);
    EXPECT_EQ(a.pairSupport, b.pairSupport);
}

TEST(FreqmineLike, WorksUnderDmp)
{
    const auto db = parsec::makeItemsetDb(1000, 100, 6, 122);
    RawScheduler raw(2);
    DmpScheduler dmp(2, 5000);
    const auto a = mineFrequent(raw, db, 20);
    const auto b = mineFrequent(dmp, db, 20);
    EXPECT_EQ(a.itemSupport, b.itemSupport);
    EXPECT_EQ(a.frequentPairs, b.frequentPairs);
}
