/**
 * @file
 * Tests for the handwritten deterministic PBBS-style baselines: output
 * validity, agreement with the reference algorithms, and determinism by
 * construction (identical output for every thread count and round size).
 */

#include <gtest/gtest.h>

#include "apps/bfs.h"
#include "apps/mis.h"
#include "graph/generators.h"
#include "pbbs/det_bfs.h"
#include "pbbs/det_mesh.h"
#include "pbbs/det_mis.h"
#include "pbbs/det_sf.h"
#include "pbbs/reservations.h"

using namespace galois;
using galois::Lockable;

TEST(DetBfs, MatchesSerialDistances)
{
    auto edges = graph::randomKOut(2000, 5, 71, true);
    apps::bfs::Graph g(2000, edges);
    const auto expect = apps::bfs::serialBfs(g, 0);
    for (unsigned threads : {1u, 2u, 4u}) {
        auto res = pbbs::detBfs(g, 0, threads);
        EXPECT_EQ(res.dist, expect) << threads << " threads";
    }
}

TEST(DetBfs, ParentTreeIsThreadCountInvariant)
{
    auto edges = graph::randomKOut(2000, 5, 72, true);
    apps::bfs::Graph g(2000, edges);
    const auto ref = pbbs::detBfs(g, 0, 1);
    for (unsigned threads : {2u, 3u, 8u}) {
        auto res = pbbs::detBfs(g, 0, threads);
        EXPECT_EQ(res.parent, ref.parent) << threads << " threads";
        EXPECT_EQ(res.stats.rounds, ref.stats.rounds);
    }
}

TEST(DetBfs, ParentsAreValidTreeEdges)
{
    auto edges = graph::randomKOut(500, 4, 73, true);
    apps::bfs::Graph g(500, edges);
    auto res = pbbs::detBfs(g, 0, 4);
    constexpr std::uint32_t kInf = ~std::uint32_t(0);
    for (graph::Node v = 0; v < 500; ++v) {
        if (res.dist[v] == kInf || v == 0)
            continue;
        const graph::Node p = res.parent[v];
        EXPECT_EQ(res.dist[v], res.dist[p] + 1);
        // p must actually be a neighbor of v (symmetric graph).
        bool adjacent = false;
        for (graph::Node u : g.neighbors(v))
            adjacent |= (u == p);
        EXPECT_TRUE(adjacent);
    }
}

TEST(DetMis, EqualsSequentialGreedy)
{
    auto edges = graph::randomKOut(3000, 5, 74, true);
    apps::mis::Graph g(3000, edges);
    const auto greedy = apps::mis::serialMis(g);
    for (unsigned threads : {1u, 4u}) {
        auto res = pbbs::detMis(g, threads);
        ASSERT_EQ(res.status.size(), greedy.size());
        for (std::size_t v = 0; v < greedy.size(); ++v) {
            EXPECT_EQ(static_cast<int>(res.status[v]),
                      static_cast<int>(greedy[v]))
                << "node " << v << ", " << threads << " threads";
        }
    }
}

TEST(DetMis, RoundCountIsThreadCountInvariant)
{
    auto edges = graph::randomKOut(1000, 6, 75, true);
    apps::mis::Graph g(1000, edges);
    const auto r1 = pbbs::detMis(g, 1);
    const auto r4 = pbbs::detMis(g, 4);
    EXPECT_EQ(r1.stats.rounds, r4.stats.rounds);
    EXPECT_GT(r1.stats.rounds, 1u); // genuinely multi-round
}

TEST(DetDt, ProducesSameTriangulationAsGalois)
{
    // The Delaunay triangulation is unique: PBBS-style reservations and
    // the Galois executors must agree geometrically.
    apps::dt::Problem a;
    apps::dt::makeProblem(apps::dt::randomPoints(600, 81), 82, a);
    Config serial;
    serial.exec = Exec::Serial;
    apps::dt::triangulate(a, serial);
    ASSERT_TRUE(apps::dt::validate(a));
    const auto expect = a.mesh.geometricHash(apps::dt::kNumSuperVerts);

    for (unsigned threads : {1u, 4u}) {
        apps::dt::Problem b;
        apps::dt::makeProblem(apps::dt::randomPoints(600, 81), 82, b);
        auto stats = pbbs::detTriangulate(b, threads, 256);
        EXPECT_EQ(stats.committed, 600u);
        EXPECT_TRUE(apps::dt::validate(b));
        EXPECT_EQ(b.mesh.geometricHash(apps::dt::kNumSuperVerts), expect)
            << threads << " threads";
    }
}

TEST(DetDt, RoundSizeIsAPerformanceParameterOnly)
{
    // Different round sizes change the round structure; the triangulation
    // stays the unique Delaunay one.
    for (std::size_t round_size : {64ul, 1024ul}) {
        apps::dt::Problem p;
        apps::dt::makeProblem(apps::dt::randomPoints(300, 83), 84, p);
        auto stats = pbbs::detTriangulate(p, 4, round_size);
        EXPECT_TRUE(apps::dt::validate(p)) << round_size;
        EXPECT_GT(stats.rounds, 1u);
    }
}

TEST(DetDmr, RefinesAndIsThreadCountInvariant)
{
    auto run = [&](unsigned threads) {
        apps::dmr::Problem prob;
        apps::dmr::makeProblem(250, 85, prob);
        auto stats = pbbs::detRefine(prob, threads, 512);
        EXPECT_TRUE(prob.mesh.checkConsistency());
        EXPECT_TRUE(prob.mesh.checkDelaunay());
        EXPECT_TRUE(apps::dmr::badTriangles(prob).empty());
        EXPECT_GT(stats.committed, 0u);
        return prob.mesh.geometricHash();
    };
    const auto h = run(1);
    EXPECT_EQ(run(2), h);
    EXPECT_EQ(run(4), h);
}

TEST(DetSf, EqualsSequentialGreedyForest)
{
    pbbs::SfProblem prob;
    prob.numNodes = 3000;
    for (const auto& e : graph::randomKOut(3000, 3, 501, false))
        prob.edges.emplace_back(e.src, e.dst);

    const auto serial = pbbs::serialSpanningForest(prob);
    ASSERT_TRUE(pbbs::validateForest(prob, serial));

    for (unsigned threads : {1u, 4u}) {
        for (std::size_t round : {128ul, 4096ul}) {
            const auto det =
                pbbs::detSpanningForest(prob, threads, round);
            EXPECT_TRUE(pbbs::validateForest(prob, det));
            EXPECT_EQ(det.inForest, serial.inForest)
                << threads << " threads, round " << round;
        }
    }
}

TEST(DetSf, ForestSizeMatchesComponentStructure)
{
    // Two disjoint cliques of 4: forest must have exactly 6 edges
    // (3 per component).
    pbbs::SfProblem prob;
    prob.numNodes = 8;
    for (std::uint32_t base : {0u, 4u})
        for (std::uint32_t i = 0; i < 4; ++i)
            for (std::uint32_t j = i + 1; j < 4; ++j)
                prob.edges.emplace_back(base + i, base + j);
    const auto det = pbbs::detSpanningForest(prob, 2, 64);
    EXPECT_TRUE(pbbs::validateForest(prob, det));
    std::size_t count = 0;
    for (auto f : det.inForest)
        count += f;
    EXPECT_EQ(count, 6u);
}

TEST(DetSf, SelfLoopsAndParallelEdges)
{
    pbbs::SfProblem prob;
    prob.numNodes = 3;
    prob.edges = {{0, 0}, {0, 1}, {0, 1}, {1, 2}, {2, 0}};
    const auto det = pbbs::detSpanningForest(prob, 2, 16);
    EXPECT_TRUE(pbbs::validateForest(prob, det));
    EXPECT_EQ(det.inForest[0], 0); // self loop never joins
    EXPECT_EQ(det.inForest[1], 1); // first (0,1) wins
    EXPECT_EQ(det.inForest[2], 0); // duplicate dropped
}

// ---------------------------------------------------------------------
// Deterministic-reservations engine (unit level)
// ---------------------------------------------------------------------

namespace {

/** Synthetic step: items are counter indices; each reserves the two
 *  cells it will increment with a non-commutative update. */
struct CounterStep
{
    std::vector<std::int64_t>& cells;
    std::vector<Lockable>& locks;
    std::uint32_t spawn_below = 0;

    bool
    reserve(std::uint32_t& item, pbbs::Reservation& res)
    {
        res.reserve(locks[item % cells.size()]);
        res.reserve(locks[(item * 7 + 3) % cells.size()]);
        return true;
    }

    void
    commit(std::uint32_t& item, pbbs::Reservation&,
           std::vector<std::uint32_t>& out_new)
    {
        const std::size_t a = item % cells.size();
        const std::size_t b = (item * 7 + 3) % cells.size();
        cells[a] = cells[a] * 3 + item;
        cells[b] = cells[b] * 5 + 1;
        if (item < spawn_below)
            out_new.push_back(item + 100000);
    }
};

std::uint64_t
runCounterStep(unsigned threads, std::size_t round, std::uint32_t items,
               std::uint32_t spawn, pbbs::PbbsStats* stats = nullptr)
{
    std::vector<std::int64_t> cells(16, 1);
    std::vector<Lockable> locks(16);
    CounterStep step{cells, locks, spawn};
    std::vector<std::uint32_t> work(items);
    for (std::uint32_t i = 0; i < items; ++i)
        work[i] = i;
    auto s = pbbs::speculativeFor(std::move(work), step, threads, round);
    if (stats)
        *stats = s;
    std::uint64_t h = 1469598103934665603ULL;
    for (std::int64_t v : cells) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

TEST(Reservations, OutputInvariantAcrossThreadCounts)
{
    pbbs::PbbsStats s1;
    const auto h = runCounterStep(1, 64, 2000, 300, &s1);
    EXPECT_EQ(s1.committed, 2300u); // items + spawned
    for (unsigned t : {2u, 4u, 8u}) {
        pbbs::PbbsStats st;
        EXPECT_EQ(runCounterStep(t, 64, 2000, 300, &st), h)
            << t << " threads";
        EXPECT_EQ(st.committed, 2300u);
        EXPECT_EQ(st.rounds, s1.rounds) << t << " threads";
    }
}

TEST(Reservations, RoundSizeChangesScheduleDeterministically)
{
    // Each round size is individually deterministic; different round
    // sizes are different (valid) schedules.
    for (std::size_t round : {16ul, 64ul, 1024ul}) {
        const auto a = runCounterStep(1, round, 1000, 0);
        const auto b = runCounterStep(4, round, 1000, 0);
        EXPECT_EQ(a, b) << "round " << round;
    }
}

TEST(Reservations, HighestPriorityItemAlwaysCommits)
{
    // All items fight over one cell: exactly one commit per item total,
    // and the abort count is bounded by rounds * (prefix - 1).
    std::vector<std::int64_t> cells(1, 0);
    std::vector<Lockable> locks(1);
    struct OneCell
    {
        std::vector<std::int64_t>& cells;
        std::vector<Lockable>& locks;
        bool
        reserve(std::uint32_t&, pbbs::Reservation& res)
        {
            res.reserve(locks[0]);
            return true;
        }
        void
        commit(std::uint32_t& item, pbbs::Reservation&,
               std::vector<std::uint32_t>&)
        {
            cells[0] = cells[0] * 3 + item;
        }
    } step{cells, locks};
    std::vector<std::uint32_t> work(50);
    for (std::uint32_t i = 0; i < 50; ++i)
        work[i] = i;
    const auto stats = pbbs::speculativeFor(std::move(work), step, 4, 32);
    EXPECT_EQ(stats.committed, 50u);
    EXPECT_EQ(stats.rounds, 50u); // one commit per round (total conflict)
    // Priority order = index order: the fold equals the sequential one.
    std::int64_t expect = 0;
    for (std::int64_t i = 0; i < 50; ++i)
        expect = expect * 3 + i;
    EXPECT_EQ(cells[0], expect);
}
