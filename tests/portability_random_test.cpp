/**
 * @file
 * Randomized portability sweep: digest and output equality across
 * thread counts on *generated* inputs, not just the handful of fixed
 * graphs the golden harness pins.
 *
 * Sixteen seeded PRNG configurations produce random graphs of varying
 * size, degree and weight range; for each, bfs/sssp/mis/cc run under
 * Exec::Det AND Exec::DetRes at 1/2/4/8 threads and must agree exactly
 * with their own 1-thread run — same traceDigest (schedule) and same
 * output vector (final state). The reservation-prefix knobs of the
 * DetRes leg are themselves sampled from the configuration index, so
 * the sweep covers many (input, prefix policy) pairs.
 *
 * The two backends partition rounds differently, so their *schedules*
 * differ — but both resolve conflicts in id order, so their *outputs*
 * must be identical; the sweep asserts that cross-backend equality on
 * every configuration. Every configuration is deterministic end to end
 * (fixed seeds), so a failure here is reproducible by seed number.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/mis.h"
#include "apps/sssp.h"
#include "graph/generators.h"

namespace {

namespace graph = galois::graph;
namespace apps = galois::apps;

constexpr int kNumConfigs = 16;

/** Input shape of one PRNG configuration: sizes and degrees vary with
 *  the configuration index so the sweep covers sparse and dense, small
 *  and mid-size graphs. */
struct Shape
{
    graph::Node nodes;
    unsigned degree;
    std::uint64_t seed;
};

Shape
shapeFor(int config)
{
    Shape s;
    s.nodes = static_cast<graph::Node>(300 + 117 * config);
    s.degree = 2 + static_cast<unsigned>(config % 5);
    s.seed = 0x9e3779b97f4a7c15ull * (config + 1);
    return s;
}

galois::Config
detCfg(unsigned threads)
{
    galois::Config cfg;
    cfg.exec = galois::Exec::Det;
    cfg.threads = threads;
    return cfg;
}

/** DetRes configuration with prefix knobs sampled per configuration
 *  index: small initial prefixes and varying round caps drive the
 *  reservation policy through its growth path at different rates. */
galois::Config
detResCfg(int config, unsigned threads)
{
    galois::Config cfg;
    cfg.exec = galois::Exec::DetRes;
    cfg.threads = threads;
    cfg.detres.initialPrefix = 8u << (config % 4);
    cfg.detres.roundSize = 512u << (config % 3);
    return cfg;
}

/** Run one app on one configuration at every thread count under the
 *  configs produced by cfgFor and compare digest + output against the
 *  1-thread run. makeGraph builds a fresh input (same seed) per run;
 *  run executes and returns the output, which is also returned to the
 *  caller for cross-backend comparison. */
template <typename MakeGraph, typename Run, typename CfgFor>
auto
sweepConfig(const char* app, int config, MakeGraph makeGraph, Run run,
            CfgFor cfgFor)
{
    auto ref_g = makeGraph();
    galois::RunReport ref_report;
    const auto ref_output = run(ref_g, cfgFor(1u), &ref_report);
    EXPECT_NE(ref_report.traceDigest, 0u)
        << app << " config " << config << ": no digest";

    for (unsigned t : {2u, 4u, 8u}) {
        auto g = makeGraph();
        galois::RunReport report;
        const auto output = run(g, cfgFor(t), &report);
        EXPECT_EQ(report.traceDigest, ref_report.traceDigest)
            << app << " config " << config << " t=" << t
            << ": schedule not portable";
        EXPECT_EQ(output, ref_output)
            << app << " config " << config << " t=" << t
            << ": output not portable";
    }
    return ref_output;
}

/** Both deterministic backends over one (app, config): each must be
 *  portable on its own, and their final states must coincide. */
template <typename MakeGraph, typename Run>
void
sweepBackends(const char* app, int config, MakeGraph makeGraph, Run run)
{
    const auto det_out = sweepConfig(app, config, makeGraph, run,
                                     [](unsigned t) { return detCfg(t); });
    const auto res_out =
        sweepConfig(app, config, makeGraph, run, [config](unsigned t) {
            return detResCfg(config, t);
        });
    EXPECT_EQ(res_out, det_out)
        << app << " config " << config
        << ": DetRes final state diverges from Det";
}

TEST(RandomizedPortability, Bfs)
{
    for (int c = 0; c < kNumConfigs; ++c) {
        const Shape s = shapeFor(c);
        sweepBackends(
            "bfs", c,
            [&] {
                auto edges = graph::randomKOut(s.nodes, s.degree, s.seed,
                                               /*symmetric=*/true);
                return apps::bfs::Graph(s.nodes, edges);
            },
            [](apps::bfs::Graph& g, const galois::Config& cfg,
               galois::RunReport* report) {
                *report = apps::bfs::galoisBfs(g, 0, cfg);
                return apps::bfs::distances(g);
            });
    }
}

TEST(RandomizedPortability, Sssp)
{
    for (int c = 0; c < kNumConfigs; ++c) {
        const Shape s = shapeFor(c);
        const std::int64_t max_w = 10 + 13 * c;
        sweepBackends(
            "sssp", c,
            [&] {
                auto edges = apps::sssp::randomWeightedGraph(
                    s.nodes, s.degree, max_w, s.seed);
                return apps::sssp::Graph(s.nodes, edges);
            },
            [](apps::sssp::Graph& g, const galois::Config& cfg,
               galois::RunReport* report) {
                *report = apps::sssp::galoisSssp(g, 0, cfg);
                return apps::sssp::distances(g);
            });
    }
}

TEST(RandomizedPortability, Mis)
{
    for (int c = 0; c < kNumConfigs; ++c) {
        const Shape s = shapeFor(c);
        sweepBackends(
            "mis", c,
            [&] {
                auto edges = graph::randomKOut(s.nodes, s.degree, s.seed,
                                               /*symmetric=*/true);
                return apps::mis::Graph(s.nodes, edges);
            },
            [](apps::mis::Graph& g, const galois::Config& cfg,
               galois::RunReport* report) {
                *report = apps::mis::galoisMis(g, cfg);
                auto f = apps::mis::flags(g);
                EXPECT_TRUE(apps::mis::isMaximalIndependentSet(g, f));
                return f;
            });
    }
}

TEST(RandomizedPortability, Cc)
{
    for (int c = 0; c < kNumConfigs; ++c) {
        const Shape s = shapeFor(c);
        sweepBackends(
            "cc", c,
            [&] {
                auto edges = graph::randomKOut(s.nodes, s.degree, s.seed,
                                               /*symmetric=*/true);
                return apps::cc::Graph(s.nodes, edges);
            },
            [](apps::cc::Graph& g, const galois::Config& cfg,
               galois::RunReport* report) {
                *report = apps::cc::galoisComponents(g, cfg);
                return apps::cc::labels(g);
            });
    }
}

} // namespace
