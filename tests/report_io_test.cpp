/**
 * @file
 * Tests for the machine-readable report emitters (runtime/report_io.h):
 * BENCH_results.json structure, chrome://tracing dump structure, JSON
 * string escaping, and the cost model of the Config::traceRounds knob —
 * off (the default) must leave RunReport::traceEvents empty, on must
 * produce a well-formed phase timeline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <vector>

#include "galois/galois.h"
#include "runtime/report_io.h"

using namespace galois;

namespace {

/** Tiny cautious workload: enough tasks for several det rounds. */
struct Workload
{
    std::vector<runtime::Lockable> locks{64};
    std::vector<long> cells = std::vector<long>(64, 0);

    std::vector<int>
    tasks() const
    {
        std::vector<int> t;
        for (int i = 0; i < 400; ++i)
            t.push_back(i);
        return t;
    }

    auto
    op()
    {
        return [this](int& v, Context<int>& ctx) {
            ctx.acquire(locks[v % 64]);
            ctx.acquire(locks[(v * 7 + 3) % 64]);
            ctx.cautiousPoint();
            cells[v % 64] += v;
        };
    }
};

RunReport
runDet(bool trace, unsigned threads = 4)
{
    Workload w;
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = threads;
    cfg.traceRounds = trace;
    return forEach(w.tasks(), w.op(), cfg);
}

/** Count occurrences of a substring. */
std::size_t
countOf(const std::string& hay, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// Config::traceRounds cost model
// ---------------------------------------------------------------------

TEST(TraceRounds, OffByDefaultAndEmpty)
{
    const RunReport r = runDet(/*trace=*/false);
    EXPECT_TRUE(r.traceEvents.empty())
        << "knob off must not allocate any trace event";
    // The round trajectory is always collected (cheap, one sample per
    // round) — only the per-phase timeline is gated.
    EXPECT_EQ(r.roundTrace.size(), r.rounds);
}

TEST(TraceRounds, OnProducesWellFormedTimeline)
{
    const RunReport r = runDet(/*trace=*/true);
    ASSERT_GT(r.rounds, 0u);
    // Five phase spans per round, in protocol order: assemble, inspect,
    // fold, select, merge.
    ASSERT_EQ(r.traceEvents.size(), 5 * r.rounds);
    const TraceEvent::Phase order[5] = {
        TraceEvent::Phase::Assemble, TraceEvent::Phase::Inspect,
        TraceEvent::Phase::Fold, TraceEvent::Phase::Select,
        TraceEvent::Phase::Merge};
    double prev_end = 0.0;
    for (std::size_t i = 0; i < r.traceEvents.size(); ++i) {
        const TraceEvent& e = r.traceEvents[i];
        EXPECT_EQ(e.round, i / 5 + 1) << i;
        EXPECT_EQ(e.phase, order[i % 5]) << i;
        EXPECT_GE(e.startSeconds, prev_end) << i;
        EXPECT_GE(e.durationSeconds, 0.0) << i;
        prev_end = e.startSeconds;
    }
}

TEST(TraceRounds, SameScheduleWithAndWithoutTracing)
{
    const RunReport off = runDet(false);
    const RunReport on = runDet(true);
    EXPECT_EQ(on.traceDigest, off.traceDigest)
        << "tracing must be observation-only";
    EXPECT_EQ(on.rounds, off.rounds);
    EXPECT_EQ(on.committed, off.committed);
}

// ---------------------------------------------------------------------
// BENCH_results.json
// ---------------------------------------------------------------------

TEST(BenchJson, EscapesStrings)
{
    EXPECT_EQ(runtime::jsonEscape("plain"), "plain");
    EXPECT_EQ(runtime::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(runtime::jsonEscape("x\ny\t"), "x\\ny\\t");
    EXPECT_EQ(runtime::jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(BenchJson, RecordCarriesScheduleAndPhases)
{
    const RunReport r = runDet(false);
    runtime::BenchRecord rec =
        runtime::makeBenchRecord("toy", "det", 4, r);
    const std::string json = runtime::benchRecordJson(rec);

    EXPECT_NE(json.find("\"app\":\"toy\""), std::string::npos);
    EXPECT_NE(json.find("\"executor\":\"det\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
    for (const char* key :
         {"\"median_s\"", "\"min_s\"", "\"commit_ratio\"", "\"rounds\"",
          "\"generations\"", "\"digest\"", "\"phases\"",
          "\"assemble_s\"", "\"inspect_s\"", "\"fold_s\"",
          "\"select_s\"", "\"merge_s\"", "\"window_trajectory\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;

    // The digest is a 16-hex-digit string (64-bit values do not survive
    // double-precision JSON parsers).
    char expect[64];
    std::snprintf(expect, sizeof(expect), "\"digest\":\"%016llx\"",
                  static_cast<unsigned long long>(r.traceDigest));
    EXPECT_NE(json.find(expect), std::string::npos) << json;

    // One [window, attempted, committed] triple per round.
    EXPECT_EQ(countOf(json.substr(json.find("window_trajectory")), "["),
              1 + r.rounds);
}

TEST(BenchJson, DocumentStructure)
{
    const RunReport r = runDet(false);
    std::vector<runtime::BenchRecord> records;
    records.push_back(runtime::makeBenchRecord("toy", "det", 1, r));
    records.push_back(runtime::makeBenchRecord("toy", "det", 2, r));

    runtime::BenchRunInfo info;
    info.scale = 0.5;
    info.reps = 3;
    info.threads = {1, 2};
    std::ostringstream os;
    runtime::writeBenchResults(os, records, info);
    const std::string doc = os.str();

    EXPECT_NE(doc.find("\"schema\": \"detgalois-bench/1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"scale\": 0.5"), std::string::npos);
    EXPECT_NE(doc.find("\"reps\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"threads\": [1, 2]"), std::string::npos);
    EXPECT_EQ(countOf(doc, "\"app\":\"toy\""), 2u);
    // Balanced braces/brackets (cheap structural sanity without a
    // parser; scripts/bench_check.py does the full json.load in CI).
    EXPECT_EQ(countOf(doc, "{"), countOf(doc, "}"));
    EXPECT_EQ(countOf(doc, "["), countOf(doc, "]"));
}

// ---------------------------------------------------------------------
// chrome://tracing dump
// ---------------------------------------------------------------------

TEST(TraceJson, DumpStructure)
{
    const RunReport r = runDet(true);
    ASSERT_FALSE(r.traceEvents.empty());

    std::vector<runtime::TraceRun> runs;
    runs.push_back(runtime::TraceRun{"toy/det/t4", r.traceEvents});
    std::ostringstream os;
    runtime::writeTraceEvents(os, runs);
    const std::string doc = os.str();

    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    // One process-name metadata event naming the run's track.
    EXPECT_EQ(countOf(doc, "\"ph\":\"M\""), 1u);
    EXPECT_NE(doc.find("\"name\":\"toy/det/t4\""), std::string::npos);
    // Every phase span is a complete event with timestamp + duration.
    EXPECT_EQ(countOf(doc, "\"ph\":\"X\""), r.traceEvents.size());
    EXPECT_EQ(countOf(doc, "\"ts\":"), r.traceEvents.size());
    EXPECT_EQ(countOf(doc, "\"dur\":"), r.traceEvents.size());
    // Phase names appear once per round.
    for (const char* phase :
         {"\"assemble\"", "\"inspect\"", "\"select\"", "\"merge\""})
        EXPECT_EQ(countOf(doc, phase), r.rounds) << phase;
    EXPECT_EQ(countOf(doc, "{"), countOf(doc, "}"));
    EXPECT_EQ(countOf(doc, "["), countOf(doc, "]"));
}
