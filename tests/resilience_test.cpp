/**
 * @file
 * Resilience tests: determinism under faults.
 *
 * The headline property extends the paper's portability claim to failing
 * runs: under Exec::Det, a deterministic fault plan (support/failpoint.h)
 * produces the *same* error, the *same* final state, and the *same*
 * round-by-round schedule trace on 1, 2, 4 and 8 threads. A fault is
 * just another input.
 *
 * For the speculative executor the guarantee is necessarily weaker —
 * scheduling is non-deterministic by design — but still strong: a
 * failing task is captured, its marks are released, and the remaining
 * work drains completely before the first error is rethrown. A fault
 * behaves exactly like removing the failing task from the task set, so
 * for workloads whose result does not depend on the serialization order
 * the faulted final state is identical across thread counts too.
 *
 * Also covered here: the progress watchdog (livelock -> fail-fast
 * diagnostic), DetOptions validation, and the backoff stats plumbing.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "galois/galois.h"

using galois::Config;
using galois::Exec;
using galois::FailPlan;
using galois::FailpointError;
using galois::Lockable;
using galois::LivelockError;
namespace failpoints = galois::failpoints;

namespace {

class ResilienceTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoints::clearAll(); }
    void TearDown() override { failpoints::clearAll(); }
};

/**
 * Conflict-heavy order-sensitive workload (same shape as the one in
 * runtime_test.cpp): task i updates cells i%N and (i*7+3)%N with
 * non-commutative arithmetic, so the final state encodes the exact
 * committed set and order — the sharpest possible probe for
 * determinism under faults.
 */
struct CellWorkload
{
    explicit CellWorkload(std::size_t cells, std::uint32_t tasks,
                          std::uint32_t spawn_limit = 0)
        : values(cells, 1), locks(cells), numTasks(tasks),
          spawnLimit(spawn_limit)
    {}

    std::vector<std::int64_t> values;
    std::vector<Lockable> locks;
    std::uint32_t numTasks;
    std::uint32_t spawnLimit;

    std::vector<std::uint32_t>
    initialTasks() const
    {
        std::vector<std::uint32_t> init(numTasks);
        for (std::uint32_t i = 0; i < numTasks; ++i)
            init[i] = i;
        return init;
    }

    auto
    op()
    {
        return [this](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
            const std::size_t a = i % values.size();
            const std::size_t b = (std::size_t(i) * 7 + 3) % values.size();
            ctx.acquire(locks[a]);
            ctx.acquire(locks[b]);
            ctx.cautiousPoint();
            values[a] = values[a] * 3 + i + 1;
            values[b] = values[b] * 5 + 2 * (i + 1);
            if (i < spawnLimit)
                ctx.push(i + numTasks);
        };
    }

    std::uint64_t
    hash() const
    {
        std::uint64_t h = 1469598103934665603ULL;
        for (std::int64_t v : values) {
            h ^= static_cast<std::uint64_t>(v);
            h *= 1099511628211ULL;
        }
        return h;
    }

    bool
    allLocksFree() const
    {
        for (const Lockable& l : locks)
            if (l.owner() != nullptr)
                return false;
        return true;
    }
};

/** Every task touches only its own cell: no conflicts, commutative. */
struct DisjointWorkload
{
    explicit DisjointWorkload(std::uint32_t tasks)
        : values(tasks, 0), locks(tasks), numTasks(tasks)
    {}

    std::vector<std::int64_t> values;
    std::vector<Lockable> locks;
    std::uint32_t numTasks;

    std::vector<std::uint32_t>
    initialTasks() const
    {
        std::vector<std::uint32_t> init(numTasks);
        for (std::uint32_t i = 0; i < numTasks; ++i)
            init[i] = i;
        return init;
    }

    auto
    op()
    {
        return [this](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
            ctx.acquire(locks[i]);
            ctx.cautiousPoint();
            values[i] = static_cast<std::int64_t>(i) + 1;
        };
    }

    bool
    allLocksFree() const
    {
        for (const Lockable& l : locks)
            if (l.owner() != nullptr)
                return false;
        return true;
    }
};

/** Outcome of a faulted deterministic run: everything that must be
 *  thread-count invariant. */
struct DetFaultOutcome
{
    std::string error;
    std::uint64_t stateHash = 0;
    std::vector<std::array<std::uint64_t, 3>> trace;

    bool
    operator==(const DetFaultOutcome& o) const
    {
        return error == o.error && stateHash == o.stateHash &&
               trace == o.trace;
    }
};

/** Run the cell workload under Exec::Det with the given fault plan
 *  armed, expecting the run to fail; returns the invariant outcome. */
DetFaultOutcome
runDetFault(const char* site, const FailPlan& plan, unsigned threads,
            bool continuation)
{
    failpoints::clearAll();
    failpoints::set(site, plan);
    CellWorkload w(64, 3000, 500);
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = threads;
    cfg.det.continuation = continuation;
    DetFaultOutcome out;
    cfg.det.roundHook = [&](std::uint64_t win, std::uint64_t att,
                            std::uint64_t com) {
        out.trace.push_back({win, att, com});
    };
    bool threw = false;
    try {
        galois::forEach(w.initialTasks(), w.op(), cfg);
    } catch (const std::exception& e) {
        threw = true;
        out.error = e.what();
    }
    EXPECT_TRUE(threw) << site << " plan did not fire";
    EXPECT_TRUE(w.allLocksFree())
        << site << ": marks leaked after faulted run";
    out.stateHash = w.hash();
    failpoints::clearAll();
    return out;
}

// ---------------------------------------------------------------------
// Deterministic executor: a fault is just another input
// ---------------------------------------------------------------------

class DetFaultPortability : public ::testing::TestWithParam<bool>
{
  protected:
    void SetUp() override { failpoints::clearAll(); }
    void TearDown() override { failpoints::clearAll(); }

    /** Asserts the outcome of (site, plan) is identical on 1/2/4/8
     *  threads and returns the reference outcome. */
    DetFaultOutcome
    assertPortable(const char* site, const FailPlan& plan)
    {
        const bool continuation = GetParam();
        const DetFaultOutcome ref =
            runDetFault(site, plan, 1, continuation);
        EXPECT_FALSE(ref.error.empty());
        for (unsigned threads : {2u, 4u, 8u}) {
            const DetFaultOutcome got =
                runDetFault(site, plan, threads, continuation);
            EXPECT_EQ(got.error, ref.error) << site << " @ " << threads;
            EXPECT_EQ(got.stateHash, ref.stateHash)
                << site << " @ " << threads;
            EXPECT_EQ(got.trace, ref.trace) << site << " @ " << threads;
        }
        return ref;
    }
};

TEST_P(DetFaultPortability, InspectFault)
{
    const auto ref = assertPortable("det.inspect", FailPlan::throwAt(37));
    EXPECT_EQ(ref.error, "failpoint 'det.inspect' triggered (key=37)");
    // The failing round still ran to completion: its hook fired and it
    // committed tasks (the error excludes only task 37).
    ASSERT_FALSE(ref.trace.empty());
    EXPECT_GT(ref.trace.back()[2], 0u);
}

TEST_P(DetFaultPortability, CommitFault)
{
    // The commit failpoint sits before the commit execution, so an
    // injected commit fault produces no partial writes — the state is
    // still a pure function of the schedule.
    const auto ref = assertPortable("det.commit", FailPlan::throwAt(37));
    EXPECT_EQ(ref.error, "failpoint 'det.commit' triggered (key=37)");
}

TEST_P(DetFaultPortability, InspectAllocFault)
{
    // Simulated allocation failure takes the same capture path.
    const auto ref =
        assertPortable("det.inspect", FailPlan::badAllocAt(37));
    EXPECT_EQ(runDetFault("det.inspect", FailPlan::badAllocAt(37), 4,
                          GetParam())
                  .error,
              ref.error); // std::bad_alloc::what(), whatever it says
}

TEST_P(DetFaultPortability, MergeBookkeepingFault)
{
    // Thread-0 bookkeeping fault (key = completed rounds): recorded
    // with the bookkeeping id, which wins deterministically. The
    // failing round's hook never runs, so the trace has exactly 2
    // entries.
    const auto ref = assertPortable("det.merge", FailPlan::throwAt(2));
    EXPECT_EQ(ref.error, "failpoint 'det.merge' triggered (key=2)");
    EXPECT_EQ(ref.trace.size(), 2u);
}

TEST_P(DetFaultPortability, IdSortFault)
{
    // Generation-build fault (key = generation number): generation 1
    // completes in full, the error fires while sorting generation 2
    // (the children).
    const auto ref = assertPortable("det.idsort", FailPlan::throwAt(2));
    EXPECT_EQ(ref.error, "failpoint 'det.idsort' triggered (key=2)");
}

TEST_P(DetFaultPortability, SmallestTaskIdWinsWhenManyFault)
{
    // Several tasks fault in the same round (ids 5, 10, 15, ... via a
    // mod matcher): the reported error must be the smallest id's, on
    // every thread count — slice boundaries must not leak through.
    const auto ref = assertPortable(
        "det.inspect",
        FailPlan{FailPlan::Action::Throw, FailPlan::Match::Mod, 5, 0});
    EXPECT_EQ(ref.error, "failpoint 'det.inspect' triggered (key=5)");
}

TEST_P(DetFaultPortability, FaultedRunsAreReproducible)
{
    // Same plan, same thread count, run twice: bit-identical outcome.
    const bool continuation = GetParam();
    const auto a =
        runDetFault("det.inspect", FailPlan::throwAt(100), 4, continuation);
    const auto b =
        runDetFault("det.inspect", FailPlan::throwAt(100), 4, continuation);
    EXPECT_TRUE(a == b);
}

INSTANTIATE_TEST_SUITE_P(BaselineAndContinuation, DetFaultPortability,
                         ::testing::Bool());

// ---------------------------------------------------------------------
// Progress watchdog
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, WatchdogDetectsNonCautiousOperator)
{
    // A non-cautious operator (acquires *after* its failsafe point)
    // under baseline selection livelocks: every select-phase
    // re-execution hits an unmarked location and conflicts, so every
    // round commits zero tasks, forever. The watchdog converts that
    // into a deterministic fail-fast diagnostic.
    auto run = [&](unsigned threads) {
        std::vector<Lockable> locks(8);
        std::vector<std::uint32_t> init(40);
        for (std::uint32_t i = 0; i < 40; ++i)
            init[i] = i;
        Config cfg;
        cfg.exec = Exec::Det;
        cfg.threads = threads;
        cfg.det.continuation = false; // baseline (DetCheck) selection
        cfg.det.watchdogRounds = 8;
        std::string error;
        std::uint64_t zero_rounds = 0;
        cfg.det.roundHook = [&](std::uint64_t, std::uint64_t,
                                std::uint64_t com) {
            if (com == 0)
                ++zero_rounds;
        };
        try {
            galois::forEach(
                init,
                [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
                    ctx.acquire(locks[i % 8]);
                    ctx.cautiousPoint();
                    ctx.acquire(locks[(i + 1) % 8]); // NOT cautious
                },
                cfg);
        } catch (const LivelockError& e) {
            error = e.what();
        }
        EXPECT_EQ(zero_rounds, 8u) << threads << " threads";
        return error;
    };
    const std::string ref = run(1);
    ASSERT_FALSE(ref.empty()) << "watchdog did not fire";
    EXPECT_NE(ref.find("progress watchdog"), std::string::npos);
    EXPECT_NE(ref.find("8 consecutive rounds"), std::string::npos);
    EXPECT_NE(ref.find("stuck task ids"), std::string::npos);
    EXPECT_NE(ref.find("not cautious"), std::string::npos);
    // The diagnostic — including the stuck ids — is thread-count
    // invariant, like everything else about the schedule.
    EXPECT_EQ(run(2), ref);
    EXPECT_EQ(run(4), ref);
}

TEST_F(ResilienceTest, WatchdogNeverMisfiresOnCautiousOperators)
{
    // A correct cautious operator commits at least one task per round
    // (the maximal-id task always keeps all its marks), so even the
    // tightest possible watchdog must never fire.
    for (bool continuation : {true, false}) {
        CellWorkload w(4, 800); // heavy conflicts: tiny commit ratio
        Config cfg;
        cfg.exec = Exec::Det;
        cfg.threads = 4;
        cfg.det.continuation = continuation;
        cfg.det.watchdogRounds = 1;
        auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
        EXPECT_EQ(report.committed, 800u);
    }
}

TEST_F(ResilienceTest, AllAbortLivelockTripsAtSameRoundOnEveryThreadCount)
{
    // All-abort schedule: every round re-executes the same window and
    // commits nothing. The watchdog must fire after *exactly*
    // watchdogRounds rounds — not one more, not one fewer — and the
    // trip round, the committed count and the full diagnostic must be
    // identical on 1, 2, 4 and 8 threads. The round number is part of
    // the message, so string equality pins it.
    constexpr std::uint64_t kWatchdog = 5;
    auto run = [&](Exec exec, const char* label, unsigned threads) {
        std::vector<Lockable> locks(4);
        std::vector<std::uint32_t> init(24);
        for (std::uint32_t i = 0; i < 24; ++i)
            init[i] = i;
        Config cfg;
        cfg.exec = exec;
        cfg.threads = threads;
        cfg.det.continuation = false; // baseline (DetCheck) selection
        cfg.det.watchdogRounds = kWatchdog;
        std::uint64_t rounds = 0;
        std::uint64_t committed = 0;
        cfg.det.roundHook = [&](std::uint64_t, std::uint64_t,
                                std::uint64_t com) {
            ++rounds;
            committed += com;
        };
        std::string error;
        try {
            galois::forEach(
                init,
                [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
                    ctx.acquire(locks[i % 4]);
                    ctx.cautiousPoint();
                    ctx.acquire(locks[(i + 1) % 4]); // NOT cautious
                },
                cfg);
        } catch (const LivelockError& e) {
            error = e.what();
        }
        EXPECT_EQ(committed, 0u)
            << label << " t=" << threads
            << ": a round committed work in an all-abort schedule";
        EXPECT_EQ(rounds, kWatchdog) << label << " t=" << threads;
        return error;
    };

    const std::string ref = run(Exec::Det, "det", 1);
    ASSERT_FALSE(ref.empty()) << "watchdog did not fire";
    EXPECT_NE(ref.find("round " + std::to_string(kWatchdog)),
              std::string::npos)
        << ref;
    for (unsigned t : {2u, 4u, 8u})
        EXPECT_EQ(run(Exec::Det, "det", t), ref) << t << " threads";

    // The serial reference oracle trips its own watchdog at the same
    // round (its message names the executor, so compare the round).
    const std::string oracle = run(Exec::DetRef, "det-ref", 1);
    ASSERT_FALSE(oracle.empty()) << "DetRef watchdog did not fire";
    EXPECT_NE(oracle.find("progress watchdog"), std::string::npos);
    EXPECT_NE(oracle.find("round " + std::to_string(kWatchdog)),
              std::string::npos)
        << oracle;
}

// ---------------------------------------------------------------------
// Wall-clock job watchdog (deadlines and cancellation)
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, WallDeadlineTripsAsDeadlineError)
{
    // An (effectively) already-expired deadline must abort the run at
    // the first round boundary with a DeadlineError — and must not
    // poison the pool or the arena: the same workload runs clean right
    // after, producing its usual digest.
    CellWorkload w(16, 200);
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 4;
    cfg.det.wallDeadlineSeconds = 1e-12;
    std::string error;
    try {
        galois::forEach(w.initialTasks(), w.op(), cfg);
    } catch (const galois::DeadlineError& e) {
        error = e.what();
    }
    ASSERT_FALSE(error.empty()) << "deadline did not fire";
    EXPECT_NE(error.find("wall-clock deadline"), std::string::npos);
    EXPECT_NE(error.find("job watchdog"), std::string::npos);

    CellWorkload clean1(16, 200), clean2(16, 200);
    cfg.det.wallDeadlineSeconds = 0;
    auto ref = galois::forEach(clean1.initialTasks(), clean1.op(), cfg);
    cfg.det.wallDeadlineSeconds = 3600; // generous: must not trip
    auto timed =
        galois::forEach(clean2.initialTasks(), clean2.op(), cfg);
    EXPECT_EQ(timed.committed, 200u);
    EXPECT_EQ(timed.traceDigest, ref.traceDigest);
    EXPECT_EQ(clean1.values, clean2.values);
}

TEST_F(ResilienceTest, CancelFlagAbortsAtRoundBoundary)
{
    // A raised cancel flag (the service's shutdown path) aborts the
    // run exactly like an expired deadline, with a diagnostic naming
    // the cancellation rather than a deadline.
    CellWorkload w(16, 200);
    std::atomic<bool> cancel{true};
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 2;
    cfg.det.cancelFlag = &cancel;
    std::string error;
    try {
        galois::forEach(w.initialTasks(), w.op(), cfg);
    } catch (const galois::DeadlineError& e) {
        error = e.what();
    }
    ASSERT_FALSE(error.empty()) << "cancellation did not fire";
    EXPECT_NE(error.find("cancelled"), std::string::npos);

    // An unraised flag is free: the run completes and matches the
    // no-flag digest.
    cancel.store(false);
    CellWorkload w2(16, 200), ref(16, 200);
    auto flagged = galois::forEach(w2.initialTasks(), w2.op(), cfg);
    cfg.det.cancelFlag = nullptr;
    auto plain = galois::forEach(ref.initialTasks(), ref.op(), cfg);
    EXPECT_EQ(flagged.committed, 200u);
    EXPECT_EQ(flagged.traceDigest, plain.traceDigest);
}

TEST_F(ResilienceTest, NegativeWallDeadlineIsRejected)
{
    CellWorkload w(4, 8);
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.det.wallDeadlineSeconds = -1;
    EXPECT_THROW(galois::forEach(w.initialTasks(), w.op(), cfg),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// DetOptions validation
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, InvalidCommitTargetIsRejected)
{
    for (double bad : {0.0, -0.5, 1.5}) {
        galois::DetOptions opt;
        opt.commitTarget = bad;
        EXPECT_THROW((void)opt.validated(), std::invalid_argument) << bad;
        // And through the executor, identically on every thread count.
        for (unsigned threads : {1u, 4u}) {
            CellWorkload w(16, 50);
            Config cfg;
            cfg.exec = Exec::Det;
            cfg.threads = threads;
            cfg.det.commitTarget = bad;
            EXPECT_THROW(galois::forEach(w.initialTasks(), w.op(), cfg),
                         std::invalid_argument)
                << bad << " @ " << threads;
        }
    }
}

TEST_F(ResilienceTest, DegenerateWindowKnobsAreClamped)
{
    // minWindow == 0 would freeze the adaptive window at zero (an
    // infinite loop on a non-empty queue); spreadBuckets == 0 would
    // divide by zero in the spread. validated() clamps both to 1, so
    // these runs must complete and match the explicit-1 configuration
    // bit for bit.
    auto run = [&](std::uint64_t min_window, std::uint64_t buckets,
                   unsigned threads) {
        CellWorkload w(48, 1500, 200);
        Config cfg;
        cfg.exec = Exec::Det;
        cfg.threads = threads;
        cfg.det.minWindow = min_window;
        cfg.det.spreadBuckets = buckets;
        auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
        EXPECT_EQ(report.committed, 1700u);
        return w.hash();
    };
    const std::uint64_t ref = run(1, 1, 1);
    EXPECT_EQ(run(0, 0, 1), ref);
    EXPECT_EQ(run(0, 0, 4), ref);
    EXPECT_EQ(run(0, 1, 8), ref);
    EXPECT_EQ(run(1, 0, 2), ref);
}

// ---------------------------------------------------------------------
// Speculative executor: capture, release, drain, rethrow
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, NonDetInjectedFaultDrainsAndRethrows)
{
    // Disjoint neighborhoods: removing task X is the only effect a
    // fault may have, so the final state is identical on every thread
    // count even for the speculative executor.
    constexpr std::uint32_t kTasks = 2000, kVictim = 123;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        failpoints::clearAll();
        failpoints::set("nondet.task", FailPlan::throwAt(kVictim));
        DisjointWorkload w(kTasks);
        Config cfg;
        cfg.exec = Exec::NonDet;
        cfg.threads = threads;
        std::string error;
        try {
            galois::forEach(w.initialTasks(), w.op(), cfg);
        } catch (const FailpointError& e) {
            error = e.what();
        }
        EXPECT_EQ(error, "failpoint 'nondet.task' triggered (key=123)")
            << threads << " threads";
        EXPECT_TRUE(w.allLocksFree()) << threads << " threads";
        // Every task except the victim completed: the error did not
        // truncate the drain.
        for (std::uint32_t i = 0; i < kTasks; ++i) {
            EXPECT_EQ(w.values[i],
                      i == kVictim ? 0 : static_cast<std::int64_t>(i) + 1)
                << "task " << i << " @ " << threads << " threads";
        }
    }
}

TEST_F(ResilienceTest, NonDetCommitSiteFaultFiresAfterTheWork)
{
    // The nondet.commit site models a failure *after* the operator ran
    // (cautious tasks have no undo): the victim's write survives, the
    // error is still captured and everything still drains.
    failpoints::clearAll();
    failpoints::set("nondet.commit", FailPlan::throwAt(123));
    DisjointWorkload w(500);
    Config cfg;
    cfg.exec = Exec::NonDet;
    cfg.threads = 4;
    EXPECT_THROW(galois::forEach(w.initialTasks(), w.op(), cfg),
                 FailpointError);
    EXPECT_TRUE(w.allLocksFree());
    for (std::uint32_t i = 0; i < 500; ++i)
        EXPECT_EQ(w.values[i], static_cast<std::int64_t>(i) + 1);
}

TEST_F(ResilienceTest, NonDetOperatorExceptionPropagates)
{
    // The operator itself throws after acquiring its neighborhood —
    // the exact scenario that used to strand peers on termination
    // detection. On every thread count: no hang, marks released, the
    // original exception (type and message) rethrown, and all other
    // tasks still executed.
    constexpr std::uint32_t kTasks = 1500, kVictim = 777;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        std::vector<std::int64_t> values(16, 0);
        std::vector<Lockable> locks(16);
        std::vector<std::uint32_t> init(kTasks);
        for (std::uint32_t i = 0; i < kTasks; ++i)
            init[i] = i;
        Config cfg;
        cfg.exec = Exec::NonDet;
        cfg.threads = threads;
        std::string error;
        try {
            galois::forEach(
                init,
                [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
                    const std::size_t a = i % values.size();
                    const std::size_t b =
                        (std::size_t(i) * 13 + 5) % values.size();
                    ctx.acquire(locks[a]);
                    ctx.acquire(locks[b]);
                    if (i == kVictim)
                        throw std::runtime_error("task 777 exploded");
                    ctx.cautiousPoint();
                    values[a] += i;
                    values[b] += 2 * i;
                },
                cfg);
        } catch (const std::runtime_error& e) {
            error = e.what();
        }
        EXPECT_EQ(error, "task 777 exploded") << threads << " threads";
        for (const Lockable& l : locks)
            EXPECT_EQ(l.owner(), nullptr) << threads << " threads";
        // Commutative updates: all tasks but the victim contributed.
        std::int64_t expect = 0;
        for (std::uint32_t i = 0; i < kTasks; ++i)
            if (i != kVictim)
                expect += 3 * static_cast<std::int64_t>(i);
        std::int64_t total = 0;
        for (std::int64_t v : values)
            total += v;
        EXPECT_EQ(total, expect) << threads << " threads";
    }
}

TEST_F(ResilienceTest, NonDetManyFaultsStillDrain)
{
    // A tenth of all tasks fail. The run must still drain (the old
    // executor hung as soon as one exception escaped) and deliver the
    // contributions of every healthy task.
    constexpr std::uint32_t kTasks = 2000;
    for (unsigned threads : {4u, 8u}) {
        std::vector<std::int64_t> values(8, 0);
        std::vector<Lockable> locks(8);
        std::vector<std::uint32_t> init(kTasks);
        for (std::uint32_t i = 0; i < kTasks; ++i)
            init[i] = i;
        Config cfg;
        cfg.exec = Exec::NonDet;
        cfg.threads = threads;
        EXPECT_THROW(
            galois::forEach(
                init,
                [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
                    ctx.acquire(locks[i % 8]);
                    if (i % 10 == 0)
                        throw std::runtime_error("unlucky");
                    ctx.cautiousPoint();
                    values[i % 8] += i;
                },
                cfg),
            std::runtime_error);
        for (const Lockable& l : locks)
            EXPECT_EQ(l.owner(), nullptr);
        std::int64_t expect = 0;
        for (std::uint32_t i = 0; i < kTasks; ++i)
            if (i % 10 != 0)
                expect += i;
        std::int64_t total = 0;
        for (std::int64_t v : values)
            total += v;
        EXPECT_EQ(total, expect) << threads << " threads";
    }
}

TEST_F(ResilienceTest, SameFaultPlanReplaysAcrossSchedulers)
{
    // serial.task and nondet.task key by the task value, so one plan
    // hits the same logical task — and raises the same error — under
    // either scheduler. What happens to the *other* tasks is each
    // scheduler's documented fault semantics: serial fail-stops at the
    // faulting task (FIFO prefix completed, suffix untouched), the
    // speculative executor drains everything else first.
    auto run = [&](Exec exec, unsigned threads, std::string& error,
                   DisjointWorkload& w) {
        failpoints::clearAll();
        ASSERT_TRUE(failpoints::parseSpec(
                        "serial.task=throw@eq:42;nondet.task=throw@eq:42"))
            << "spec failed to parse";
        Config cfg;
        cfg.exec = exec;
        cfg.threads = threads;
        try {
            galois::forEach(w.initialTasks(), w.op(), cfg);
        } catch (const FailpointError& e) {
            error = e.what();
        }
        EXPECT_TRUE(w.allLocksFree());
        EXPECT_EQ(w.values[42], 0) << "exec " << static_cast<int>(exec);
    };

    DisjointWorkload serial_w(300);
    std::string serial_err;
    run(Exec::Serial, 1, serial_err, serial_w);
    EXPECT_EQ(serial_err, "failpoint 'serial.task' triggered (key=42)");
    for (std::uint32_t i = 0; i < 300; ++i)
        EXPECT_EQ(serial_w.values[i],
                  i < 42 ? static_cast<std::int64_t>(i) + 1 : 0)
            << "serial task " << i;

    for (unsigned threads : {1u, 4u}) {
        DisjointWorkload nd_w(300);
        std::string nd_err;
        run(Exec::NonDet, threads, nd_err, nd_w);
        EXPECT_EQ(nd_err, "failpoint 'nondet.task' triggered (key=42)");
        for (std::uint32_t i = 0; i < 300; ++i)
            EXPECT_EQ(nd_w.values[i],
                      i == 42 ? 0 : static_cast<std::int64_t>(i) + 1)
                << "nondet task " << i << " @ " << threads;
    }
}

// ---------------------------------------------------------------------
// Stats plumbing
// ---------------------------------------------------------------------

TEST_F(ResilienceTest, BackoffYieldsAccumulateIntoTheReport)
{
    galois::runtime::ThreadStats a, b;
    a.backoffYields = 5;
    a.committed = 1;
    b.backoffYields = 7;
    a += b;
    EXPECT_EQ(a.backoffYields, 12u);
    galois::RunReport r;
    r.accumulate(a);
    EXPECT_EQ(r.backoffYields, 12u);
}

} // namespace
