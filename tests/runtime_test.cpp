/**
 * @file
 * Unit and property tests for the executors.
 *
 * The central properties under test mirror the paper's claims:
 *
 *  - *Correctness*: every executor commits each task exactly once and the
 *    result is serializable (commutative workloads match the serial sum).
 *  - *Determinism & portability* (Exec::Det): for a workload whose result
 *    is order-sensitive (non-commutative updates), the final state is
 *    bit-identical across thread counts.
 *  - *Equivalence of the continuation optimization*: baseline mark-check
 *    selection and flag-protocol selection commit the same independent
 *    sets, hence identical outputs.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "galois/galois.h"
#include "runtime/worklist.h"
#include "support/barrier.h"
#include "support/thread_pool.h"

using galois::Config;
using galois::Exec;
using galois::Lockable;

namespace {

/**
 * Conflict-heavy order-sensitive workload over N shared cells.
 *
 * Task i touches cells i%N and (i*7+3)%N with non-commutative updates, so
 * the final state encodes the serialization order — a sharp determinism
 * probe. Tasks with i < spawn_limit push a child task i + total.
 */
struct CellWorkload
{
    explicit CellWorkload(std::size_t cells, std::uint32_t tasks,
                          std::uint32_t spawn_limit = 0)
        : values(cells, 1), locks(cells), numTasks(tasks),
          spawnLimit(spawn_limit)
    {}

    std::vector<std::int64_t> values;
    std::vector<Lockable> locks;
    std::uint32_t numTasks;
    std::uint32_t spawnLimit;

    std::vector<std::uint32_t>
    initialTasks() const
    {
        std::vector<std::uint32_t> init(numTasks);
        for (std::uint32_t i = 0; i < numTasks; ++i)
            init[i] = i;
        return init;
    }

    auto
    op()
    {
        return [this](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
            const std::size_t a = i % values.size();
            const std::size_t b = (std::size_t(i) * 7 + 3) % values.size();
            ctx.acquire(locks[a]);
            ctx.acquire(locks[b]);
            ctx.cautiousPoint();
            values[a] = values[a] * 3 + i + 1;
            values[b] = values[b] * 5 + 2 * (i + 1);
            if (i < spawnLimit)
                ctx.push(i + numTasks);
        };
    }

    /** FNV-style hash of the final state. */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = 1469598103934665603ULL;
        for (std::int64_t v : values) {
            h ^= static_cast<std::uint64_t>(v);
            h *= 1099511628211ULL;
        }
        return h;
    }
};

/** Commutative variant: final state independent of ANY serialization. */
struct SumWorkload
{
    explicit SumWorkload(std::size_t cells, std::uint32_t tasks)
        : values(cells, 0), locks(cells), numTasks(tasks)
    {}

    std::vector<std::int64_t> values;
    std::vector<Lockable> locks;
    std::uint32_t numTasks;

    std::vector<std::uint32_t>
    initialTasks() const
    {
        std::vector<std::uint32_t> init(numTasks);
        for (std::uint32_t i = 0; i < numTasks; ++i)
            init[i] = i;
        return init;
    }

    auto
    op()
    {
        return [this](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
            const std::size_t a = i % values.size();
            const std::size_t b = (std::size_t(i) * 13 + 5) % values.size();
            ctx.acquire(locks[a]);
            ctx.acquire(locks[b]);
            ctx.cautiousPoint();
            values[a] += i;
            values[b] += 2 * i;
        };
    }

    std::int64_t
    total() const
    {
        std::int64_t s = 0;
        for (std::int64_t v : values)
            s += v;
        return s;
    }
};

std::uint64_t
runCellWorkload(Exec exec, unsigned threads, bool continuation,
                std::uint32_t tasks = 3000, std::size_t cells = 64,
                std::uint32_t spawn = 500,
                galois::RunReport* out_report = nullptr)
{
    CellWorkload w(cells, tasks, spawn);
    Config cfg;
    cfg.exec = exec;
    cfg.threads = threads;
    cfg.det.continuation = continuation;
    auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
    if (out_report)
        *out_report = report;
    return w.hash();
}

} // namespace

// ---------------------------------------------------------------------
// Worklist
// ---------------------------------------------------------------------

TEST(Worklist, DrainsEverythingAcrossThreads)
{
    galois::runtime::ChunkedWorklist<int> wl;
    constexpr int kItems = 10000;
    std::vector<std::atomic<int>> seen(kItems);
    // Seed from the main thread; drain with 4 threads (exercises steals).
    for (int i = 0; i < kItems; ++i)
        wl.push(i);
    galois::support::ThreadPool::get().run(4, [&](unsigned) {
        while (auto item = wl.pop())
            seen[*item].fetch_add(1);
    });
    for (int i = 0; i < kItems; ++i)
        EXPECT_EQ(seen[i].load(), 1) << "item " << i;
}

TEST(Worklist, FifoPolicyPreservesSingleThreadOrder)
{
    galois::runtime::ChunkedWorklist<int> wl(
        galois::WorklistPolicy{/*fifo=*/true, /*chunkSize=*/64});
    for (int i = 0; i < 300; ++i)
        wl.push(i);
    for (int i = 0; i < 300; ++i) {
        auto item = wl.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_FALSE(wl.pop().has_value());
}

TEST(Worklist, LifoPolicyDrainsEverythingAcrossThreads)
{
    galois::runtime::ChunkedWorklist<int> wl(
        galois::WorklistPolicy{/*fifo=*/false, /*chunkSize=*/64});
    constexpr int kItems = 10000;
    std::vector<std::atomic<int>> seen(kItems);
    for (int i = 0; i < kItems; ++i)
        wl.push(i);
    galois::support::ThreadPool::get().run(4, [&](unsigned) {
        while (auto item = wl.pop())
            seen[*item].fetch_add(1);
    });
    for (int i = 0; i < kItems; ++i)
        EXPECT_EQ(seen[i].load(), 1) << "item " << i;
}

TEST(Worklist, TinyChunksForceSharedDequeTraffic)
{
    // chunkSize 1 promotes every push to the shared deque: the
    // steal/refill paths run constantly instead of only at chunk
    // boundaries.
    galois::runtime::ChunkedWorklist<int> wl(
        galois::WorklistPolicy{/*fifo=*/true, /*chunkSize=*/1});
    for (int i = 0; i < 500; ++i)
        wl.push(i);
    for (int i = 0; i < 500; ++i) {
        auto item = wl.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_FALSE(wl.pop().has_value());
}

TEST(NonDetExecutor, BothWorklistPoliciesAreCorrect)
{
    for (auto policy :
         {galois::NdWorklist::ChunkedFifo, galois::NdWorklist::ChunkedLifo}) {
        for (unsigned chunk : {1u, 64u}) {
            SumWorkload w(32, 3000);
            Config cfg;
            cfg.exec = Exec::NonDet;
            cfg.threads = 4;
            cfg.ndWorklist = policy;
            cfg.ndChunkSize = chunk;
            auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
            EXPECT_EQ(report.committed, 3000u);
            std::int64_t expect = 0;
            for (std::uint32_t i = 0; i < 3000; ++i)
                expect += 3 * static_cast<std::int64_t>(i);
            EXPECT_EQ(w.total(), expect);
        }
    }
}

TEST(Worklist, PushPopInterleaved)
{
    galois::runtime::ChunkedWorklist<int> wl;
    int popped = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 100; ++i)
            wl.push(i);
        for (int i = 0; i < 50; ++i)
            if (wl.pop())
                ++popped;
    }
    while (wl.pop())
        ++popped;
    EXPECT_EQ(popped, 1000);
}

// ---------------------------------------------------------------------
// Serial executor
// ---------------------------------------------------------------------

TEST(SerialExecutor, FifoOrderAndPushes)
{
    std::vector<int> order;
    std::vector<int> init{1, 2, 3};
    Config cfg;
    cfg.exec = Exec::Serial;
    auto report = galois::forEach(
        init,
        [&](int& x, galois::Context<int>& ctx) {
            order.push_back(x);
            if (x < 3)
                ctx.push(x + 10);
        },
        cfg);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 11, 12}));
    EXPECT_EQ(report.committed, 5u);
    EXPECT_EQ(report.pushed, 2u);
    EXPECT_EQ(report.aborted, 0u);
}

// ---------------------------------------------------------------------
// Non-deterministic executor
// ---------------------------------------------------------------------

TEST(NonDetExecutor, CommitsEveryTaskOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        SumWorkload w(32, 5000);
        Config cfg;
        cfg.exec = Exec::NonDet;
        cfg.threads = threads;
        auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
        EXPECT_EQ(report.committed, 5000u) << threads << " threads";
        // Commutative updates: any serializable execution gives the sum.
        std::int64_t expect = 0;
        for (std::uint32_t i = 0; i < 5000; ++i)
            expect += 3 * static_cast<std::int64_t>(i);
        EXPECT_EQ(w.total(), expect) << threads << " threads";
    }
}

TEST(NonDetExecutor, DynamicTaskCreation)
{
    // Each task i in [0, 100) spawns i+100; tasks in [100, 200) spawn
    // nothing. Total = 200.
    std::vector<std::uint32_t> init(100);
    for (std::uint32_t i = 0; i < 100; ++i)
        init[i] = i;
    std::vector<std::atomic<int>> seen(200);
    Config cfg;
    cfg.exec = Exec::NonDet;
    cfg.threads = 4;
    auto report = galois::forEach(
        init,
        [&](std::uint32_t& x, galois::Context<std::uint32_t>& ctx) {
            seen[x].fetch_add(1);
            if (x < 100)
                ctx.push(x + 100);
        },
        cfg);
    EXPECT_EQ(report.committed, 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(seen[i].load(), 1) << "task " << i;
}

TEST(NonDetExecutor, SerializableUnderHeavyConflicts)
{
    // 4 cells, 2000 tasks: almost every pair of concurrent tasks
    // conflicts, forcing the abort/retry path.
    for (unsigned threads : {2u, 4u}) {
        SumWorkload w(4, 2000);
        Config cfg;
        cfg.exec = Exec::NonDet;
        cfg.threads = threads;
        auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
        EXPECT_EQ(report.committed, 2000u);
        std::int64_t expect = 0;
        for (std::uint32_t i = 0; i < 2000; ++i)
            expect += 3 * static_cast<std::int64_t>(i);
        EXPECT_EQ(w.total(), expect);
    }
}

// ---------------------------------------------------------------------
// Deterministic executor: correctness
// ---------------------------------------------------------------------

TEST(DetExecutor, CommitsEveryTaskOnce)
{
    galois::RunReport report;
    runCellWorkload(Exec::Det, 4, true, 3000, 64, 500, &report);
    EXPECT_EQ(report.committed, 3500u); // 3000 initial + 500 children
    EXPECT_GT(report.rounds, 0u);
    EXPECT_EQ(report.generations, 2u); // children form a second generation
}

TEST(DetExecutor, SerializableResult)
{
    // Commutative workload: deterministic scheduling must still produce
    // the serial sum.
    SumWorkload w(16, 4000);
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 4;
    auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
    EXPECT_EQ(report.committed, 4000u);
    std::int64_t expect = 0;
    for (std::uint32_t i = 0; i < 4000; ++i)
        expect += 3 * static_cast<std::int64_t>(i);
    EXPECT_EQ(w.total(), expect);
}

// ---------------------------------------------------------------------
// Deterministic executor: portability (thread-count invariance)
// ---------------------------------------------------------------------

class DetPortability : public ::testing::TestWithParam<bool>
{};

TEST_P(DetPortability, OutputInvariantAcrossThreadCounts)
{
    const bool continuation = GetParam();
    const std::uint64_t h1 = runCellWorkload(Exec::Det, 1, continuation);
    for (unsigned threads : {2u, 3u, 4u, 7u, 8u}) {
        EXPECT_EQ(runCellWorkload(Exec::Det, threads, continuation), h1)
            << threads << " threads, continuation=" << continuation;
    }
}

INSTANTIATE_TEST_SUITE_P(BaselineAndContinuation, DetPortability,
                         ::testing::Bool());

TEST(DetExecutor, ContinuationDoesNotChangeOutput)
{
    // The flag protocol must select exactly the same independent sets as
    // the baseline mark re-check (Section 3.3's protocol change is an
    // optimization, not a semantic change).
    for (unsigned threads : {1u, 4u}) {
        EXPECT_EQ(runCellWorkload(Exec::Det, threads, true),
                  runCellWorkload(Exec::Det, threads, false))
            << threads << " threads";
    }
}

TEST(DetExecutor, RoundScheduleIsThreadCountInvariant)
{
    // Stronger than output invariance: the entire round-by-round
    // schedule — window sizes, attempted counts, committed counts — must
    // be identical for every thread count.
    auto trace = [&](unsigned threads) {
        CellWorkload w(48, 2500, 400);
        Config cfg;
        cfg.exec = Exec::Det;
        cfg.threads = threads;
        std::vector<std::array<std::uint64_t, 3>> rounds;
        cfg.det.roundHook = [&](std::uint64_t win, std::uint64_t att,
                                std::uint64_t com) {
            rounds.push_back({win, att, com});
        };
        galois::forEach(w.initialTasks(), w.op(), cfg);
        return rounds;
    };
    const auto ref = trace(1);
    EXPECT_GT(ref.size(), 2u);
    EXPECT_EQ(trace(2), ref);
    EXPECT_EQ(trace(4), ref);
    EXPECT_EQ(trace(8), ref);
}

TEST(DetExecutor, RepeatedRunsAreIdentical)
{
    const std::uint64_t h = runCellWorkload(Exec::Det, 4, true);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(runCellWorkload(Exec::Det, 4, true), h);
}

// ---------------------------------------------------------------------
// Deterministic executor: parameter sweep (each parameter point is
// individually deterministic across thread counts)
// ---------------------------------------------------------------------

struct DetParams
{
    bool continuation;
    bool spread;
    double commitTarget;
    std::uint64_t minWindow;
    std::uint64_t fixedWindow = 0;
};

class DetParamSweep : public ::testing::TestWithParam<DetParams>
{};

TEST_P(DetParamSweep, ThreadCountInvariance)
{
    const DetParams p = GetParam();
    auto run = [&](unsigned threads) {
        CellWorkload w(48, 2000, 300);
        Config cfg;
        cfg.exec = Exec::Det;
        cfg.threads = threads;
        cfg.det.continuation = p.continuation;
        cfg.det.localitySpread = p.spread;
        cfg.det.commitTarget = p.commitTarget;
        cfg.det.minWindow = p.minWindow;
        cfg.det.fixedWindow = p.fixedWindow;
        auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
        EXPECT_EQ(report.committed, 2300u);
        return w.hash();
    };
    const std::uint64_t h = run(1);
    EXPECT_EQ(run(2), h);
    EXPECT_EQ(run(4), h);
    EXPECT_EQ(run(8), h);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetParamSweep,
    ::testing::Values(DetParams{true, true, 0.95, 16},
                      DetParams{true, false, 0.95, 16},
                      DetParams{false, true, 0.95, 16},
                      DetParams{false, false, 0.5, 4},
                      DetParams{true, true, 0.5, 64},
                      DetParams{true, true, 0.999, 1},
                      DetParams{true, true, 0.95, 16, /*fixed=*/7},
                      DetParams{false, true, 0.95, 16, /*fixed=*/911}));

// ---------------------------------------------------------------------
// Atomicity (serializability smoke test)
// ---------------------------------------------------------------------

TEST(Executors, RebalancePreservesTotalUnderHeavyConflicts)
{
    // Each task rebalances two cells: t = a + b; a = t/2; b = t - t/2.
    // The total is preserved *only* if tasks are atomic — interleaved
    // stale reads corrupt it. Few cells + many tasks maximizes conflict
    // pressure on the abort/retry and select paths.
    for (auto [exec, threads] :
         {std::pair{Exec::NonDet, 4u}, std::pair{Exec::NonDet, 8u},
          std::pair{Exec::Det, 4u}, std::pair{Exec::Det, 8u}}) {
        constexpr std::size_t kCells = 6;
        std::vector<std::int64_t> cells(kCells);
        std::vector<Lockable> locks(kCells);
        std::int64_t expect = 0;
        for (std::size_t c = 0; c < kCells; ++c) {
            cells[c] = static_cast<std::int64_t>(1000 * c + 37);
            expect += cells[c];
        }
        std::vector<std::uint32_t> init(4000);
        for (std::uint32_t i = 0; i < init.size(); ++i)
            init[i] = i;

        Config cfg;
        cfg.exec = exec;
        cfg.threads = threads;
        galois::forEach(
            init,
            [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
                const std::size_t a = i % kCells;
                const std::size_t b = (i / kCells + a + 1) % kCells;
                if (a == b)
                    return;
                ctx.acquire(locks[a]);
                ctx.acquire(locks[b]);
                ctx.cautiousPoint();
                const std::int64_t t = cells[a] + cells[b];
                cells[a] = t / 2;
                cells[b] = t - t / 2;
            },
            cfg);

        std::int64_t total = 0;
        for (std::int64_t v : cells)
            total += v;
        EXPECT_EQ(total, expect)
            << "exec " << static_cast<int>(exec) << " threads "
            << threads;
    }
}

// ---------------------------------------------------------------------
// Continuation local state
// ---------------------------------------------------------------------

TEST(DetExecutor, SavedStateRoundTrip)
{
    // Operator saves a value at inspect and must see it again at commit
    // (only in DetCommit mode; other modes recompute).
    struct Saved
    {
        std::uint64_t tag;
    };
    std::vector<Lockable> locks(8);
    std::vector<std::int64_t> cells(8, 0);
    std::vector<std::uint32_t> init(64);
    for (std::uint32_t i = 0; i < 64; ++i)
        init[i] = i;
    std::atomic<int> resumed{0}, recomputed{0};

    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 4;
    auto report = galois::forEach(
        init,
        [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
            Saved* s = ctx.savedState<Saved>();
            if (s) {
                resumed.fetch_add(1);
                EXPECT_EQ(s->tag, std::uint64_t(i) * 31 + 7);
            } else {
                recomputed.fetch_add(1);
                ctx.acquire(locks[i % 8]);
                ctx.saveState<Saved>(std::uint64_t(i) * 31 + 7);
            }
            ctx.cautiousPoint();
            cells[i % 8] += i;
        },
        cfg);
    EXPECT_EQ(report.committed, 64u);
    // Every committed task resumed from saved state (continuation on).
    EXPECT_EQ(resumed.load(), 64);
    // Inspect executions (including retries) recomputed.
    EXPECT_GE(recomputed.load(), 64);
}

TEST(DetExecutor, PreassignedIds)
{
    // Children pushed with explicit ids must be processed in id order in
    // the next generation, regardless of parent commit order.
    std::vector<Lockable> locks(1);
    std::vector<int> order;
    std::vector<std::uint32_t> init{0, 1, 2, 3};
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 4;
    cfg.det.localitySpread = false;
    cfg.det.minWindow = 1000; // single round per generation
    galois::forEach(
        init,
        [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
            ctx.acquire(locks[0]);
            ctx.cautiousPoint();
            if (i < 4) {
                // Parent i pushes child 100+i with a pair-swapped
                // pre-assigned id: 0->2, 1->1, 2->4, 3->3.
                const std::uint64_t preid = (i % 2 == 0) ? i + 2 : i;
                ctx.push(100 + i, preid);
            } else {
                order.push_back(static_cast<int>(i));
            }
        },
        cfg);
    // Children sort by pre-assigned id: 101(1), 100(2), 103(3), 102(4),
    // receiving generation ids 1..4 in that order. All four conflict on
    // locks[0], so exactly one commits per round — and within a window
    // the *earliest* id wins (the id-order markMin discipline, which is
    // what makes the committed state serial-order equivalent). Hence the
    // commit order is 101 (id 1), 100 (2), 103 (3), 102 (4).
    EXPECT_EQ(order, (std::vector<int>{101, 100, 103, 102}));
}

// ---------------------------------------------------------------------
// Cross-executor agreement
// ---------------------------------------------------------------------

TEST(Executors, AgreeOnCommutativeWorkloads)
{
    auto run = [&](Exec exec, unsigned threads) {
        SumWorkload w(16, 3000);
        Config cfg;
        cfg.exec = exec;
        cfg.threads = threads;
        galois::forEach(w.initialTasks(), w.op(), cfg);
        return w.total();
    };
    const std::int64_t serial = run(Exec::Serial, 1);
    EXPECT_EQ(run(Exec::NonDet, 4), serial);
    EXPECT_EQ(run(Exec::Det, 4), serial);
}

TEST(Executors, EmptyInitialIsANoOp)
{
    std::vector<int> init;
    for (Exec exec : {Exec::Serial, Exec::NonDet, Exec::Det}) {
        Config cfg;
        cfg.exec = exec;
        cfg.threads = 4;
        auto report = galois::forEach(
            init, [](int&, galois::Context<int>&) { FAIL(); }, cfg);
        EXPECT_EQ(report.committed, 0u);
    }
}

TEST(Executors, ReportsCountAtomicsAndCacheModel)
{
    SumWorkload w(16, 1000);
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 2;
    cfg.collectLocality = true;
    auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
    // The batched mark protocol resolves conflicts with a serial fold of
    // plain stores: the deterministic executor performs zero atomic
    // read-modify-writes, and nothing here calls countAtomic().
    EXPECT_EQ(report.atomicOps, 0u);
    EXPECT_GT(report.cacheAccesses, 0u);
    EXPECT_GE(report.cacheAccesses, report.cacheMisses);

    // The speculative executor still pays CAS-acquired marks — the
    // contrast the Figure 5 accounting exists to show.
    cfg.exec = Exec::NonDet;
    SumWorkload w2(16, 1000);
    auto nd = galois::forEach(w2.initialTasks(), w2.op(), cfg);
    EXPECT_GT(nd.atomicOps, 0u);
}

TEST(Executors, PhaseFusionIsScheduleNeutral)
{
    // The fused protocol (serial steps in barrier completion sections,
    // two rendezvous per round) and the legacy unfused shape (five
    // rendezvous) must produce bit-identical schedules: same digest,
    // rounds, committed — at every thread count, with and without the
    // continuation optimization. This is the executable counterpart of
    // the quiescence-equivalence argument in DESIGN.md §13.
    auto run = [&](galois::PhaseFusion fusion, unsigned threads,
                   bool continuation) {
        SumWorkload w(16, 2000);
        Config cfg;
        cfg.exec = Exec::Det;
        cfg.threads = threads;
        cfg.det.fusion = fusion;
        cfg.det.continuation = continuation;
        auto report = galois::forEach(w.initialTasks(), w.op(), cfg);
        return std::tuple(report.traceDigest, report.rounds,
                          report.committed, w.total());
    };
    for (const bool continuation : {true, false}) {
        const auto fused1 =
            run(galois::PhaseFusion::Fused, 1, continuation);
        for (const unsigned threads : {1u, 2u, 4u}) {
            EXPECT_EQ(run(galois::PhaseFusion::Fused, threads,
                          continuation),
                      fused1)
                << threads << " " << continuation;
            EXPECT_EQ(run(galois::PhaseFusion::Unfused, threads,
                          continuation),
                      fused1)
                << threads << " " << continuation;
        }
    }
}

// ---------------------------------------------------------------------
// Additional executor edge cases
// ---------------------------------------------------------------------

TEST(Executors, ZeroNeighborhoodTasksRun)
{
    // Tasks that acquire nothing are trivially independent everywhere.
    // Side effects still belong after the failsafe point: the DIG
    // inspect phase re-executes the prefix, so effects placed before
    // cautiousPoint() must be idempotent (here: none).
    for (Exec exec : {Exec::Serial, Exec::NonDet, Exec::Det}) {
        std::atomic<int> count{0};
        std::vector<int> init(500);
        for (int i = 0; i < 500; ++i)
            init[i] = i;
        Config cfg;
        cfg.exec = exec;
        cfg.threads = 4;
        auto report = galois::forEach(
            init,
            [&](int&, galois::Context<int>& ctx) {
                ctx.cautiousPoint();
                count.fetch_add(1);
            },
            cfg);
        EXPECT_EQ(count.load(), 500);
        EXPECT_EQ(report.committed, 500u);
        EXPECT_EQ(report.aborted, 0u);
    }
}

TEST(Executors, RepeatedAcquireOfSameLocation)
{
    // Acquiring the same location many times must not blow up the
    // neighborhood or double-release.
    std::vector<Lockable> locks(4);
    std::vector<std::int64_t> cells(4, 0);
    std::vector<std::uint32_t> init(1000);
    for (std::uint32_t i = 0; i < 1000; ++i)
        init[i] = i;
    for (Exec exec : {Exec::NonDet, Exec::Det}) {
        Config cfg;
        cfg.exec = exec;
        cfg.threads = 4;
        auto report = galois::forEach(
            init,
            [&](std::uint32_t& i, galois::Context<std::uint32_t>& ctx) {
                for (int rep = 0; rep < 5; ++rep)
                    ctx.acquire(locks[i % 4]);
                ctx.cautiousPoint();
                cells[i % 4] += 1;
            },
            cfg);
        EXPECT_EQ(report.committed, 1000u);
    }
    // Both executors ran: 1000 increments each.
    EXPECT_EQ(cells[0] + cells[1] + cells[2] + cells[3], 2000);
}

TEST(DetExecutor, DeepGenerationChains)
{
    // A chain of single-child tasks: generation count equals the depth.
    std::vector<Lockable> locks(1);
    std::vector<std::uint32_t> init{0};
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 4;
    constexpr std::uint32_t kDepth = 64;
    auto report = galois::forEach(
        init,
        [&](std::uint32_t& d, galois::Context<std::uint32_t>& ctx) {
            ctx.acquire(locks[0]);
            ctx.cautiousPoint();
            if (d + 1 < kDepth)
                ctx.push(d + 1);
        },
        cfg);
    EXPECT_EQ(report.committed, kDepth);
    EXPECT_EQ(report.generations, kDepth);
}

TEST(DetExecutor, WideFanOutOfChildren)
{
    // One task creates 10k children; ids must be assigned to all and
    // every child must commit exactly once.
    std::vector<Lockable> locks(64);
    std::atomic<std::uint64_t> seen{0};
    std::vector<std::uint32_t> init{~0u};
    Config cfg;
    cfg.exec = Exec::Det;
    cfg.threads = 4;
    auto report = galois::forEach(
        init,
        [&](std::uint32_t& v, galois::Context<std::uint32_t>& ctx) {
            if (v == ~0u) {
                ctx.cautiousPoint();
                for (std::uint32_t c = 0; c < 10000; ++c)
                    ctx.push(c);
            } else {
                ctx.acquire(locks[v % 64]);
                ctx.cautiousPoint();
                seen.fetch_add(v, std::memory_order_relaxed);
            }
        },
        cfg);
    EXPECT_EQ(report.committed, 10001u);
    EXPECT_EQ(seen.load(), 9999ull * 10000 / 2);
}

// ---------------------------------------------------------------------
// Barrier edge cases: the completion-bearing wait() is the spine of the
// fused round protocol, and its corners (single participant, throwing
// completion, reinit to a degraded width) are exactly where a sense-
// reversal barrier can rot silently. The schedule-space model checker
// (detmc) certifies the 2-3 thread interleavings; these tests pin the
// degenerate widths it does not model.
// ---------------------------------------------------------------------

TEST(Barrier, SingleParticipantRunsCompletionInline)
{
    // A 1-thread pool degenerates every rendezvous to a function call:
    // the sole arrival is always the last arrival, so the completion
    // must run synchronously, once per epoch, and never block.
    galois::support::Barrier bar(1);
    unsigned completions = 0;
    for (unsigned epoch = 0; epoch < 3; ++epoch) {
        bar.wait([&] { ++completions; });
        EXPECT_EQ(completions, epoch + 1);
        bar.wait(); // plain rendezvous must also pass straight through
    }
    EXPECT_EQ(completions, 3u);
}

TEST(Barrier, ThrowingCompletionPropagatesAndReinitRestores)
{
    // The contract says completions must not throw (a throwing
    // completion strands parked peers), so RoundEngine contains
    // exceptions in its serial sections. With a single participant
    // there are no peers to strand: the exception surfaces to the
    // caller, the barrier is left mid-epoch, and reinit() — the
    // documented recovery point — must restore a usable barrier.
    galois::support::Barrier bar(1);
    EXPECT_THROW(bar.wait([] { throw std::runtime_error("serial step"); }),
                 std::runtime_error);
    bar.reinit(1);
    unsigned completions = 0;
    bar.wait([&] { ++completions; });
    EXPECT_EQ(completions, 1u);
}

TEST(Barrier, ReinitToDegradedWidthIsReusable)
{
    // A pool that loses workers mid-experiment (failpoint-degraded
    // runs) re-arms the barrier narrower: 4 participants, then
    // reinit(2). Epochs at both widths must complete, and every epoch's
    // completion must observe all of its width's arrivals.
    galois::support::Barrier bar(4);
    std::atomic<unsigned> arrivals{0};
    std::vector<unsigned> snapshots;
    galois::support::ThreadPool::get().run(4, [&](unsigned) {
        for (unsigned epoch = 0; epoch < 2; ++epoch) {
            arrivals.fetch_add(1, std::memory_order_relaxed);
            bar.wait([&] {
                snapshots.push_back(
                    arrivals.load(std::memory_order_relaxed));
            });
        }
    });
    bar.reinit(2);
    galois::support::ThreadPool::get().run(2, [&](unsigned) {
        arrivals.fetch_add(1, std::memory_order_relaxed);
        bar.wait([&] {
            snapshots.push_back(
                arrivals.load(std::memory_order_relaxed));
        });
    });
    // Completions ran once per epoch and saw every arrival of their
    // epoch: 4, then 8, then 8 + 2.
    ASSERT_EQ(snapshots.size(), 3u);
    EXPECT_EQ(snapshots[0], 4u);
    EXPECT_EQ(snapshots[1], 8u);
    EXPECT_EQ(snapshots[2], 10u);
}
