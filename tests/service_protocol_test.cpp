/**
 * @file
 * Wire-protocol tests (service/protocol.h): the line-delimited JSON
 * loop over an in-memory stream, and the Unix-domain-socket transport
 * end to end — a real client socket submitting jobs to a listening
 * service and reading receipts back.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.h"
#include "service/wire.h"

using galois::service::DetService;
using galois::service::ServiceConfig;
namespace wire = galois::service::wire;

namespace {

/** Run the stream loop over a canned request script. */
std::vector<std::string>
runScript(const std::string& script, ServiceConfig cfg = {})
{
    DetService svc(cfg);
    std::istringstream in(script);
    std::ostringstream out;
    galois::service::serveStream(svc, in, out);
    std::vector<std::string> lines;
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line))
        lines.push_back(line);
    return lines;
}

/** Parse a reply line and return the object (fails the test on error). */
wire::Value
reply(const std::string& line)
{
    std::string err;
    wire::Value v = wire::parse(line, err);
    EXPECT_EQ(err, "") << line;
    return v;
}

/** Index reply lines that carry an "id" by that id. */
std::map<std::string, wire::Value>
byId(const std::vector<std::string>& lines)
{
    std::map<std::string, wire::Value> m;
    for (const auto& line : lines) {
        wire::Value v = reply(line);
        if (const wire::Value* id = v.find("id"))
            m[id->asString()] = std::move(v);
    }
    return m;
}

TEST(Protocol, PingStatsAndShutdownOps)
{
    const auto lines = runScript("{\"op\":\"ping\"}\n"
                                 "{\"op\":\"stats\"}\n"
                                 "{\"op\":\"shutdown\"}\n"
                                 "{\"op\":\"ping\"}\n"); // after bye: unread
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "{\"op\":\"pong\"}");
    EXPECT_NE(lines[1].find("detgalois-svcstats/1"), std::string::npos);
    EXPECT_EQ(lines[2], "{\"op\":\"bye\"}");
}

TEST(Protocol, SubmitReturnsReceiptOnItsOwnLine)
{
    const auto lines = runScript(
        "{\"id\":\"p1\",\"app\":\"bfs\",\"n\":3000,\"seed\":3}\n");
    ASSERT_EQ(lines.size(), 1u);
    const wire::Value r = reply(lines[0]);
    EXPECT_EQ(r.find("schema")->asString(), "detgalois-receipt/1");
    EXPECT_EQ(r.find("id")->asString(), "p1");
    EXPECT_EQ(r.find("status")->asString(), "ok");
    EXPECT_EQ(r.find("code")->asU64(), 200u);
    EXPECT_EQ(r.find("digest")->asString().size(), 16u);
    ASSERT_NE(r.find("record"), nullptr);
    EXPECT_EQ(r.find("record")->find("app")->asString(), "bfs");
}

TEST(Protocol, MalformedLinesGet400sAndTheLoopSurvives)
{
    const auto lines = runScript(
        "this is not json\n"
        "{\"op\":\"frobnicate\"}\n"
        "{\"id\":\"\",\"app\":\"bfs\"}\n"
        "{\"id\":\"v1\",\"app\":\"nosuch\"}\n"
        "{\"id\":\"ok1\",\"app\":\"cc\",\"n\":2000,\"seed\":2}\n");
    ASSERT_EQ(lines.size(), 5u);
    for (int i = 0; i < 4; ++i) {
        const wire::Value r = reply(lines[i]);
        EXPECT_EQ(r.find("status")->asString(), "badrequest") << i;
        EXPECT_EQ(r.find("code")->asU64(), 400u) << i;
        EXPECT_FALSE(r.find("error")->asString().empty()) << i;
    }
    // The real job after four garbage lines still ran to a receipt.
    const auto m = byId(lines);
    ASSERT_TRUE(m.count("ok1"));
    EXPECT_EQ(m.at("ok1").find("status")->asString(), "ok");
}

TEST(Protocol, ConcurrentSubmitsAllGetReceipts)
{
    ServiceConfig cfg;
    cfg.lanes = 4;
    cfg.queueCapacity = 16;
    std::string script;
    for (int i = 0; i < 8; ++i)
        script += "{\"id\":\"c" + std::to_string(i) +
                  "\",\"app\":\"mis\",\"n\":2000,\"seed\":" +
                  std::to_string(i) + "}\n";
    const auto lines = runScript(script, cfg);
    const auto m = byId(lines);
    ASSERT_EQ(m.size(), 8u); // every job answered exactly once
    for (const auto& [id, r] : m)
        EXPECT_EQ(r.find("status")->asString(), "ok") << id;
}

// ---------------------------------------------------------------------
// Unix-domain socket transport
// ---------------------------------------------------------------------

class UdsClient
{
  public:
    explicit UdsClient(const std::string& path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        // The listener may not be up yet: retry briefly.
        for (int i = 0; i < 100; ++i) {
            if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof addr) == 0)
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        ADD_FAILURE() << "could not connect to " << path;
    }

    ~UdsClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    send(const std::string& line)
    {
        const std::string framed = line + "\n";
        ASSERT_EQ(::write(fd_, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
    }

    std::string
    readLine()
    {
        std::string line;
        char c;
        while (::read(fd_, &c, 1) == 1) {
            if (c == '\n')
                return line;
            line += c;
        }
        return line;
    }

  private:
    int fd_ = -1;
};

TEST(ProtocolUds, SubmitAndShutdownOverSocket)
{
    const std::string path = "/tmp/detgalois-test-" +
                             std::to_string(::getpid()) + ".sock";
    ServiceConfig cfg;
    cfg.lanes = 2;
    DetService svc(cfg);
    std::string serveErr;
    std::thread server([&] {
        serveErr = galois::service::serveUds(svc, path);
    });

    {
        UdsClient client(path);
        client.send("{\"op\":\"ping\"}");
        EXPECT_EQ(client.readLine(), "{\"op\":\"pong\"}");
        client.send(
            "{\"id\":\"u1\",\"app\":\"sssp\",\"n\":2500,\"seed\":4}");
        const wire::Value r = reply(client.readLine());
        EXPECT_EQ(r.find("id")->asString(), "u1");
        EXPECT_EQ(r.find("status")->asString(), "ok");

        // A second concurrent connection shares the same service.
        UdsClient other(path);
        other.send("{\"op\":\"stats\"}");
        const wire::Value st = reply(other.readLine());
        EXPECT_GE(st.find("completed")->asU64(), 1u);

        client.send("{\"op\":\"shutdown\"}");
        EXPECT_EQ(client.readLine(), "{\"op\":\"bye\"}");
    }
    server.join();
    EXPECT_EQ(serveErr, "");
    // The socket file is gone: a stale path never shadows a new server.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ProtocolUds, BindFailureIsDiagnosedNotFatal)
{
    DetService svc{ServiceConfig{}};
    const std::string err =
        galois::service::serveUds(svc, "/nonexistent-dir/x.sock");
    EXPECT_NE(err.find("bind"), std::string::npos);
}

} // namespace
