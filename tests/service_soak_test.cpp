/**
 * @file
 * Concurrent-job soak: the service's isolation oracle.
 *
 * Drives waves of mixed jobs (all four service apps, varied sizes,
 * seeds and widths) through a small-laned service for ~20 seconds,
 * with per-job fault injection riding along: transient faults that
 * must be retried to success, permanent faults that must abort their
 * job — and *only* their job. The oracle: every receipt of a job that
 * ran to completion carries a digest byte-identical to the one-shot
 * reference run of the same (app, params, seed, config), no matter
 * what was failing, aborting or timing out on the other lanes at the
 * time. Afterwards the service must still be admitting (a fresh wave
 * completes), which is the "stays up" half of the robustness story.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"
#include "support/timer.h"

using galois::service::DetService;
using galois::service::JobSpec;
using galois::service::JobStatus;
using galois::service::Receipt;
using galois::service::ServiceConfig;

namespace {

constexpr unsigned kWave = 72;       // jobs per wave (>= 64)
constexpr double kSoakSeconds = 20;  // keep submitting this long

/** Fault roles woven through a wave. */
enum class Role
{
    Clean,     //!< no injection: must succeed first try
    Transient, //!< fires once, retried: must still succeed + verify
    Abort,     //!< permanent fault, no retries: must fail alone
    Deadline   //!< 1 ms deadline on a big job: must time out alone
};

Role
roleOf(unsigned i)
{
    if (i % 9 == 3)
        return Role::Transient;
    if (i % 9 == 6)
        return Role::Abort;
    if (i % 24 == 10)
        return Role::Deadline;
    return Role::Clean;
}

/** Clean parameters of job i — the replayable identity. */
JobSpec
cleanSpec(unsigned i)
{
    static const char* kApps[] = {"bfs", "sssp", "cc", "mis"};
    JobSpec spec;
    spec.app = kApps[i % 4];
    spec.n = 2000 + 1100 * (i % 5);
    spec.k = 3 + i % 3;
    spec.seed = 5 + i % 6;
    spec.exec = galois::Exec::Det;
    spec.threads = 1u << (i % 3);
    return spec;
}

/** Job i of a wave, with its fault role applied. */
JobSpec
soakJob(unsigned wave, unsigned i)
{
    JobSpec spec = cleanSpec(i);
    spec.id = "w" + std::to_string(wave) + "-" + std::to_string(i);
    switch (roleOf(i)) {
      case Role::Clean:
        break;
      case Role::Transient:
        spec.failpoints =
            "det.inspect=throw@eq:" + std::to_string(1 + i % 4) + "^1";
        break;
      case Role::Abort:
        spec.failpoints = "det.merge=throw@always";
        spec.retries = 0;
        break;
      case Role::Deadline:
        spec.n = 60000; // big enough to outlive a 1 ms budget
        spec.deadlineMs = 1;
        spec.retries = 0;
        break;
    }
    return spec;
}

TEST(ServiceSoak, ConcurrentFaultedJobsNeverPerturbEachOther)
{
    // One-shot reference digests for every distinct clean cell, before
    // the service exists: the oracle is computed in isolation.
    std::map<std::string, std::uint64_t> oracle;
    for (unsigned i = 0; i < kWave; ++i) {
        JobSpec ref = cleanSpec(i);
        ref.id = "ref";
        const std::string cell = ref.describe();
        if (oracle.count(cell))
            continue;
        const Receipt r = DetService::runInline(ref);
        ASSERT_EQ(r.status, JobStatus::Ok)
            << cell << ": " << r.error;
        oracle[cell] = r.digest;
    }

    ServiceConfig cfg;
    cfg.lanes = 4;
    cfg.queueCapacity = 16;
    cfg.retryBackoffMs = 0;
    DetService svc(cfg);

    std::mutex lock;
    std::condition_variable done;
    unsigned terminal = 0, submitted = 0;
    std::vector<std::string> problems;

    auto checkReceipt = [&](unsigned i, Receipt r) {
        std::lock_guard<std::mutex> guard(lock);
        const Role role = roleOf(i);
        const std::string cell = cleanSpec(i).describe();
        switch (role) {
          case Role::Clean:
          case Role::Transient:
            if (r.status != JobStatus::Ok)
                problems.push_back(r.id + " [" + cell +
                                   "]: " + r.error);
            else if (r.digest != oracle.at(cell))
                problems.push_back(r.id + " [" + cell +
                                   "]: digest mismatch");
            else if (role == Role::Transient && r.attempts < 2)
                problems.push_back(r.id + ": transient fault never fired");
            break;
          case Role::Abort:
            if (r.status != JobStatus::Error)
                problems.push_back(r.id + ": abort job ended as " +
                                   galois::service::jobStatusName(
                                       r.status));
            break;
          case Role::Deadline:
            if (r.status != JobStatus::Timeout &&
                r.status != JobStatus::Error)
                problems.push_back(r.id + ": deadline job ended as " +
                                   galois::service::jobStatusName(
                                       r.status));
            break;
        }
        ++terminal;
        done.notify_all();
    };

    // Soak: submit full waves (with client-side backpressure retry on
    // 429) until the clock runs out, then drain.
    galois::support::Timer wall;
    wall.start();
    unsigned wave = 0;
    do {
        for (unsigned i = 0; i < kWave; ++i) {
            const JobSpec spec = soakJob(wave, i);
            for (;;) {
                // A refused submit still calls the callback (with the
                // 429 receipt) before returning false; the job is
                // resubmitted below, so only terminal receipts count.
                const bool admitted = svc.submit(
                    spec, [&checkReceipt, i](Receipt r) {
                        if (r.status != JobStatus::Rejected)
                            checkReceipt(i, std::move(r));
                    });
                if (admitted)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            ++submitted;
        }
        ++wave;
    } while (wall.seconds() < kSoakSeconds);
    {
        std::unique_lock<std::mutex> guard(lock);
        done.wait(guard, [&] { return terminal == submitted; });
    }
    ASSERT_GE(submitted, 64u);
    EXPECT_TRUE(problems.empty())
        << problems.size() << " violations, first: " << problems[0];

    // The service must still be admitting after all that: a fresh
    // clean wave runs end to end.
    unsigned okAfter = 0;
    for (unsigned i = 0; i < 8; ++i) {
        JobSpec spec = cleanSpec(i);
        spec.id = "after-" + std::to_string(i);
        const Receipt r = svc.submitAndWait(spec);
        okAfter += r.status == JobStatus::Ok;
        EXPECT_EQ(r.digest, oracle.at(cleanSpec(i).describe()))
            << spec.id;
    }
    EXPECT_EQ(okAfter, 8u);

    const auto st = svc.stats();
    EXPECT_EQ(st.completed + st.failed, submitted + 8u);
    EXPECT_GT(st.retries, 0u); // the transient faults really retried
}

} // namespace
