/**
 * @file
 * Unit tests for the resident service core (service/server.h): the
 * admission queue, per-job retry/deadline policy, receipt
 * verification, and graceful shutdown. Wire-level tests live in
 * tests/service_protocol_test.cpp; the large concurrent isolation
 * oracle in tests/service_soak_test.cpp.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/detsan.h"
#include "service/server.h"

using galois::service::DetService;
using galois::service::JobSpec;
using galois::service::JobStatus;
using galois::service::Receipt;
using galois::service::ServiceConfig;
namespace failpoints = galois::failpoints;

namespace {

JobSpec
bfsJob(const std::string& id, unsigned threads = 2)
{
    JobSpec spec;
    spec.id = id;
    spec.app = "bfs";
    spec.n = 3000;
    spec.k = 4;
    spec.seed = 7;
    spec.exec = galois::Exec::Det;
    spec.threads = threads;
    return spec;
}

TEST(ServiceInline, ProducesVerifiableReceipt)
{
    const Receipt r = DetService::runInline(bfsJob("j1"));
    ASSERT_EQ(r.status, JobStatus::Ok) << r.error;
    EXPECT_EQ(r.id, "j1");
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_NE(r.digest, 0u);
    ASSERT_TRUE(r.hasRecord);
    EXPECT_EQ(r.record.traceDigest, r.digest);
    EXPECT_EQ(r.record.app, "bfs");
    EXPECT_EQ(galois::service::jobStatusCode(r.status), 200);
}

TEST(ServiceInline, DigestIsThreadCountPortable)
{
    const Receipt one = DetService::runInline(bfsJob("a", 1));
    const Receipt four = DetService::runInline(bfsJob("b", 4));
    ASSERT_EQ(one.status, JobStatus::Ok);
    ASSERT_EQ(four.status, JobStatus::Ok);
    EXPECT_EQ(one.digest, four.digest);
}

TEST(ServiceInline, ExpectDigestVerifiesOnTheServer)
{
    const Receipt probe = DetService::runInline(bfsJob("probe"));
    ASSERT_EQ(probe.status, JobStatus::Ok);

    JobSpec good = bfsJob("good");
    good.expectDigest = galois::service::digestHex(probe.digest);
    const Receipt ok = DetService::runInline(good);
    ASSERT_EQ(ok.status, JobStatus::Ok);
    EXPECT_TRUE(ok.hasVerified);
    EXPECT_TRUE(ok.verified);

    JobSpec bad = bfsJob("bad");
    bad.expectDigest = "0000000000000000";
    const Receipt no = DetService::runInline(bad);
    ASSERT_EQ(no.status, JobStatus::Ok);
    EXPECT_TRUE(no.hasVerified);
    EXPECT_FALSE(no.verified);
}

TEST(ServiceInline, MalformedFailpointsIsBadRequest)
{
    JobSpec spec = bfsJob("j");
    spec.failpoints = "not-a-spec";
    const Receipt r = DetService::runInline(spec);
    EXPECT_EQ(r.status, JobStatus::BadRequest);
    EXPECT_NE(r.error.find("bad failpoint clause"), std::string::npos);
}

TEST(ServiceRetry, TransientFaultRetriesToTheCleanDigest)
{
    const Receipt clean = DetService::runInline(bfsJob("clean"));
    ASSERT_EQ(clean.status, JobStatus::Ok);

    JobSpec spec = bfsJob("faulted");
    spec.failpoints = "det.inspect=throw@eq:1^1"; // fires once, ever
    ServiceConfig cfg;
    cfg.maxRetries = 2;
    cfg.retryBackoffMs = 0;
    const Receipt r = DetService::runInline(spec, cfg);
    ASSERT_EQ(r.status, JobStatus::Ok) << r.error;
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.digest, clean.digest); // retried run is the clean run
}

TEST(ServiceRetry, PermanentFaultExhaustsTheBudget)
{
    JobSpec spec = bfsJob("doomed");
    spec.failpoints = "det.inspect=throw@always";
    spec.retries = 1;
    ServiceConfig cfg;
    cfg.retryBackoffMs = 0;
    const Receipt r = DetService::runInline(spec, cfg);
    EXPECT_EQ(r.status, JobStatus::Error);
    EXPECT_EQ(r.attempts, 2u); // first try + one retry
    EXPECT_NE(r.error.find("failpoint"), std::string::npos);
    EXPECT_EQ(galois::service::jobStatusCode(r.status), 500);
}

TEST(ServiceRetry, ZeroRetriesMeansOneAttempt)
{
    JobSpec spec = bfsJob("once");
    spec.failpoints = "det.inspect=throw@eq:1^1";
    spec.retries = 0;
    const Receipt r = DetService::runInline(spec);
    EXPECT_EQ(r.status, JobStatus::Error);
    EXPECT_EQ(r.attempts, 1u);
}

TEST(ServiceDeadline, ExpiredDeadlineIsA504)
{
    JobSpec spec = bfsJob("late");
    spec.n = 20000;
    spec.deadlineMs = 1; // expires within the first rounds
    const Receipt r = DetService::runInline(spec);
    EXPECT_EQ(r.status, JobStatus::Timeout);
    EXPECT_EQ(galois::service::jobStatusCode(r.status), 504);
    EXPECT_NE(r.error.find("wall-clock deadline"), std::string::npos);
    EXPECT_EQ(r.attempts, 1u); // deadlines are not retried
}

TEST(ServiceAdmission, FullQueueRejectsDeterministically)
{
    ServiceConfig cfg;
    cfg.lanes = 1;
    cfg.queueCapacity = 2;
    DetService svc(cfg);
    svc.suspendLanes(); // freeze pickup: queue state is deterministic

    std::vector<Receipt> rejected;
    std::atomic<unsigned> completed{0};
    auto countOk = [&completed](Receipt r) {
        if (r.status == JobStatus::Ok)
            completed.fetch_add(1);
    };
    EXPECT_TRUE(svc.submit(bfsJob("q1"), countOk));
    EXPECT_TRUE(svc.submit(bfsJob("q2"), countOk));
    // Queue is at capacity: the third submit must be refused *before*
    // submit returns, with a 429 receipt naming the queue state.
    bool admitted = svc.submit(bfsJob("q3"), [&rejected](Receipt r) {
        rejected.push_back(std::move(r));
    });
    EXPECT_FALSE(admitted);
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_EQ(rejected[0].status, JobStatus::Rejected);
    EXPECT_EQ(galois::service::jobStatusCode(rejected[0].status), 429);
    EXPECT_NE(rejected[0].error.find("queue full (2/2)"),
              std::string::npos);

    svc.resumeLanes();
    svc.shutdown(); // q1/q2 run or get orphaned-Rejected; either way
                    // the admission counters below are already final
    const auto st = svc.stats();
    EXPECT_EQ(st.submitted, 3u);
    EXPECT_EQ(st.rejected, 1u);
}

TEST(ServiceAdmission, InjectedAdmissionFaultRejects)
{
    DetService svc{ServiceConfig{}};
    {
        // The caller's scope governs admission (submit runs on the
        // calling thread): an armed service.admit plan turns into a
        // deterministic 429, not a crash.
        failpoints::JobScope scope("service.admit=throw@always");
        Receipt r = svc.submitAndWait(bfsJob("blocked"));
        EXPECT_EQ(r.status, JobStatus::Rejected);
        EXPECT_NE(r.error.find("service.admit"), std::string::npos);
    }
    Receipt r = svc.submitAndWait(bfsJob("fine"));
    EXPECT_EQ(r.status, JobStatus::Ok) << r.error;
}

TEST(ServiceQueue, SubmitAndWaitRoundTrips)
{
    ServiceConfig cfg;
    cfg.lanes = 2;
    DetService svc(cfg);
    const Receipt inline_ = DetService::runInline(bfsJob("ref"));
    const Receipt lane = svc.submitAndWait(bfsJob("lane"));
    ASSERT_EQ(lane.status, JobStatus::Ok) << lane.error;
    EXPECT_EQ(lane.digest, inline_.digest);
    EXPECT_GE(lane.runSeconds, 0.0);
    const auto st = svc.stats();
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.queued, 0u);
}

TEST(ServiceShutdown, OrphanedJobsGetRejectedReceipts)
{
    ServiceConfig cfg;
    cfg.lanes = 1;
    cfg.queueCapacity = 4;
    DetService svc(cfg);
    svc.suspendLanes();
    std::vector<JobStatus> seen;
    std::mutex lock;
    for (int i = 0; i < 3; ++i)
        svc.submit(bfsJob("orphan" + std::to_string(i)),
                   [&](Receipt r) {
                       std::lock_guard<std::mutex> guard(lock);
                       seen.push_back(r.status);
                   });
    svc.shutdown(); // never resumed: all three must still get receipts
    ASSERT_EQ(seen.size(), 3u);
    for (JobStatus s : seen)
        EXPECT_EQ(s, JobStatus::Rejected);
    // Submitting after shutdown is refused, not crashed.
    Receipt late = svc.submitAndWait(bfsJob("late"));
    EXPECT_EQ(late.status, JobStatus::Rejected);
    EXPECT_NE(late.error.find("shutting down"), std::string::npos);
}

TEST(ServiceDegradation, OverwideRequestClampsAndStillVerifies)
{
    // Requesting more threads than the pool owns must not fail the
    // job — and must not change its digest (the degradation story).
    JobSpec wide = bfsJob("wide");
    wide.threads = 1024;
    const Receipt r = DetService::runInline(wide);
    ASSERT_EQ(r.status, JobStatus::Ok) << r.error;
    EXPECT_LE(r.record.threads,
              galois::support::ThreadPool::get().maxThreads());
    EXPECT_EQ(r.digest, DetService::runInline(bfsJob("narrow", 1)).digest);
}

TEST(ServiceAudit, LaneReportAndDigestMatchStandalone)
{
    // Detsan report determinism under the service: the same job run
    // through a 2-lane DetService and standalone (runInline) must yield
    // a byte-identical sanitizer report and the same receipt digest.
    // In the instrumented compilation of this file (service_audit_test)
    // the checked value channels actually fire; uninstrumented, the
    // reports are trivially empty and the digest check still bites.
    namespace detsan = galois::analysis;
    detsan::configure(detsan::DetSanOptions{});
    const Receipt standalone = DetService::runInline(bfsJob("standalone"));
    const std::string standaloneReport = detsan::takeReport().toString();
    ASSERT_EQ(standalone.status, JobStatus::Ok) << standalone.error;

    ServiceConfig cfg;
    cfg.lanes = 2;
    DetService svc(cfg);
    detsan::configure(detsan::DetSanOptions{});
    const Receipt lane = svc.submitAndWait(bfsJob("lane"));
    const std::string laneReport = detsan::takeReport().toString();
    ASSERT_EQ(lane.status, JobStatus::Ok) << lane.error;

    EXPECT_EQ(lane.digest, standalone.digest);
    EXPECT_EQ(laneReport, standaloneReport);
}

TEST(ServiceAudit, ReceiptCarriesTheEnvAuditedFlag)
{
    // env_audited is stamped from the service's own compilation state:
    // true exactly when server.cpp was built with DETGALOIS_DETSAN and
    // the value checks are on (the default), false otherwise. This test
    // is compiled both ways (service_test / service_audit_test), so
    // both sides of the contract are exercised by plain ctest.
    galois::analysis::configure(galois::analysis::DetSanOptions{});
    const Receipt r = DetService::runInline(bfsJob("audited"));
    ASSERT_EQ(r.status, JobStatus::Ok) << r.error;
    EXPECT_EQ(r.envAudited, DETGALOIS_DETSAN_INSTRUMENTED == 1);
    const std::string j = r.toJson();
    EXPECT_NE(j.find(std::string("\"env_audited\":") +
                     (DETGALOIS_DETSAN_INSTRUMENTED ? "true" : "false")),
              std::string::npos)
        << j;
}

TEST(ServiceReceipt, JsonCarriesSchemaStatusAndParams)
{
    const Receipt r = DetService::runInline(bfsJob("json"));
    ASSERT_EQ(r.status, JobStatus::Ok);
    const std::string j = r.toJson();
    EXPECT_NE(j.find("\"schema\":\"detgalois-receipt/1\""),
              std::string::npos);
    EXPECT_NE(j.find("\"id\":\"json\""), std::string::npos);
    EXPECT_NE(j.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(j.find("\"code\":200"), std::string::npos);
    EXPECT_NE(j.find("\"digest\":\"" +
                     galois::service::digestHex(r.digest) + "\""),
              std::string::npos);
    EXPECT_NE(j.find("\"params\":{\"app\":\"bfs\""), std::string::npos);
    EXPECT_NE(j.find("\"record\":{"), std::string::npos);
    EXPECT_EQ(j.find('\n'), std::string::npos); // one line, always
}

} // namespace
