/**
 * @file
 * Tests for the service's minimal JSON layer (service/wire.h): the
 * request parser (exact integers, escapes, error offsets) and the
 * string serializer, plus JobSpec request validation (service/job.h).
 */

#include <gtest/gtest.h>

#include <string>

#include "service/job.h"
#include "service/wire.h"

namespace wire = galois::service::wire;
using galois::service::JobSpec;

namespace {

wire::Value
parseOk(const std::string& text)
{
    std::string err;
    wire::Value v = wire::parse(text, err);
    EXPECT_EQ(err, "") << text;
    return v;
}

std::string
parseErr(const std::string& text)
{
    std::string err;
    (void)wire::parse(text, err);
    EXPECT_FALSE(err.empty()) << text;
    return err;
}

TEST(Wire, ParsesFlatRequestObject)
{
    const wire::Value v = parseOk(
        R"({"op":"submit","id":"j1","n":20000,"seed":7,"deep":false})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("op")->asString(), "submit");
    EXPECT_EQ(v.find("id")->asString(), "j1");
    EXPECT_EQ(v.find("n")->asU64(), 20000u);
    EXPECT_EQ(v.find("seed")->asU64(), 7u);
    EXPECT_FALSE(v.find("deep")->asBool(true));
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Wire, IntegersSurviveExactly)
{
    // Digests and seeds are 64-bit; a double round-trip would corrupt
    // them above 2^53.
    const wire::Value v =
        parseOk(R"({"seed":9007199254740993,"f":1.5,"neg":-12})");
    EXPECT_TRUE(v.find("seed")->isInteger);
    EXPECT_EQ(v.find("seed")->asU64(), 9007199254740993ull);
    EXPECT_FALSE(v.find("f")->isInteger);
    EXPECT_DOUBLE_EQ(v.find("f")->asDouble(), 1.5);
    EXPECT_EQ(v.find("neg")->asI64(), -12);
}

TEST(Wire, StringEscapesDecode)
{
    const wire::Value v =
        parseOk(R"({"s":"a\"b\\c\ndAé"})");
    EXPECT_EQ(v.find("s")->string, "a\"b\\c\nd"
                                   "A\xc3\xa9");
}

TEST(Wire, ArraysAndNestingParse)
{
    const wire::Value v = parseOk(R"({"a":[1,[2,3],{"k":null}]})");
    const wire::Value* a = v.find("a");
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_EQ(a->array[1].array[1].asU64(), 3u);
    EXPECT_TRUE(a->array[2].find("k")->isNull());
}

TEST(Wire, ErrorsNameTheByteOffset)
{
    EXPECT_NE(parseErr("{\"a\":}").find("at byte"), std::string::npos);
    (void)parseErr("");
    (void)parseErr("{\"a\":1");           // truncated
    (void)parseErr("{\"a\":1} trailing"); // garbage after document
    (void)parseErr("{'a':1}");            // single quotes
    (void)parseErr("{\"a\":01}");         // leading zero
    (void)parseErr("[1,]");               // trailing comma
}

TEST(Wire, QuoteEscapesControlCharacters)
{
    EXPECT_EQ(wire::quote("plain"), "\"plain\"");
    EXPECT_EQ(wire::quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(wire::quote(std::string("a\nb\x01") + "c"),
              "\"a\\nb\\u0001c\"");
    // quote() output must parse back to the original.
    const std::string tricky = "q\"\\\n\t\x02z";
    const wire::Value v =
        parseOk("{\"k\":" + wire::quote(tricky) + "}");
    EXPECT_EQ(v.find("k")->string, tricky);
}

// ---------------------------------------------------------------------
// JobSpec validation
// ---------------------------------------------------------------------

std::string
specErr(const std::string& json)
{
    std::string err;
    wire::Value v = wire::parse(json, err);
    EXPECT_EQ(err, "") << json;
    JobSpec spec;
    return galois::service::parseJobSpec(v, spec);
}

TEST(JobSpecParse, AcceptsFullRequestAndAppliesDefaults)
{
    std::string err;
    wire::Value v = wire::parse(
        R"({"id":"j9","app":"sssp","n":5000,"k":3,"seed":11,)"
        R"("source":4,"max_weight":50,"exec":"det","threads":8,)"
        R"("deadline_ms":2000,"retries":1,)"
        R"("failpoints":"det.inspect=throw@eq:2^1"})",
        err);
    ASSERT_EQ(err, "");
    JobSpec spec;
    ASSERT_EQ(galois::service::parseJobSpec(v, spec), "");
    EXPECT_EQ(spec.app, "sssp");
    EXPECT_EQ(spec.n, 5000u);
    EXPECT_EQ(spec.maxWeight, 50);
    EXPECT_EQ(spec.threads, 8u);
    EXPECT_EQ(spec.deadlineMs, 2000u);
    EXPECT_EQ(spec.retries, 1u);

    wire::Value minimal =
        wire::parse(R"({"id":"m","app":"cc"})", err);
    JobSpec d;
    ASSERT_EQ(galois::service::parseJobSpec(minimal, d), "");
    EXPECT_EQ(d.n, 10000u); // per-app default
    EXPECT_EQ(d.k, 3u);
    EXPECT_EQ(d.exec, galois::Exec::Det);
    EXPECT_EQ(d.retries, ~0u); // service default applies
}

TEST(JobSpecParse, RejectsBadRequestsWithDiagnostics)
{
    EXPECT_NE(specErr(R"({"app":"bfs"})").find("'id'"),
              std::string::npos);
    EXPECT_NE(specErr(R"({"id":"x","app":"pagerank"})")
                  .find("unknown app"),
              std::string::npos);
    EXPECT_NE(specErr(R"({"id":"x","app":"bfs","n":1})")
                  .find("'n' out of range"),
              std::string::npos);
    EXPECT_NE(specErr(R"({"id":"x","app":"bfs","k":99})")
                  .find("'k' out of range"),
              std::string::npos);
    EXPECT_NE(specErr(R"({"id":"x","app":"bfs","source":999999})")
                  .find("'source' out of range"),
              std::string::npos);
    EXPECT_NE(specErr(R"({"id":"x","app":"bfs","exec":"quantum"})")
                  .find("unknown exec"),
              std::string::npos);
    EXPECT_NE(
        specErr(R"({"id":"x","app":"bfs","failpoints":"nope=throw@always"})")
            .find("bad 'failpoints'"),
        std::string::npos);
    EXPECT_NE(
        specErr(R"({"id":"x","app":"bfs","expect_digest":"123"})")
            .find("expect_digest"),
        std::string::npos);
}

} // namespace
