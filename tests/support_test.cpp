/**
 * @file
 * Unit tests for the threading substrate: thread pool, barrier,
 * per-thread storage, termination detection, PRNG, cache model.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "model/cache_model.h"
#include "model/linreg.h"
#include "support/barrier.h"
#include "support/parallel_sort.h"
#include "support/per_thread.h"
#include "support/prng.h"
#include "support/segmented_vector.h"
#include "support/termination.h"
#include "support/thread_pool.h"

using namespace galois::support;

TEST(ThreadPool, RunsEveryTidExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        std::vector<std::atomic<int>> hits(threads);
        ThreadPool::get().run(threads, [&](unsigned tid) {
            ASSERT_LT(tid, threads);
            hits[tid].fetch_add(1);
        });
        for (unsigned t = 0; t < threads; ++t)
            EXPECT_EQ(hits[t].load(), 1) << "tid " << t;
    }
}

TEST(ThreadPool, ThreadIdMatchesArgument)
{
    ThreadPool::get().run(4, [&](unsigned tid) {
        EXPECT_EQ(ThreadPool::threadId(), tid);
        EXPECT_EQ(ThreadPool::activeThreads(), 4u);
    });
    EXPECT_EQ(ThreadPool::threadId(), 0u);
    EXPECT_EQ(ThreadPool::activeThreads(), 1u);
}

TEST(ThreadPool, PropagatesExceptions)
{
    EXPECT_THROW(
        ThreadPool::get().run(4,
                              [&](unsigned tid) {
                                  if (tid == 2)
                                      throw std::runtime_error("boom");
                              }),
        std::runtime_error);
    // Pool must stay usable after an exception.
    std::atomic<int> count{0};
    ThreadPool::get().run(4, [&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, ReusableAcrossManyRegions)
{
    std::atomic<long> total{0};
    for (int i = 0; i < 100; ++i)
        ThreadPool::get().run(3, [&](unsigned tid) { total += tid; });
    EXPECT_EQ(total.load(), 100 * (0 + 1 + 2));
}

TEST(Barrier, SynchronizesPhases)
{
    constexpr unsigned kThreads = 4;
    constexpr int kPhases = 50;
    Barrier barrier(kThreads);
    std::atomic<int> phase_count{0};
    std::atomic<bool> violated{false};

    ThreadPool::get().run(kThreads, [&](unsigned) {
        for (int p = 0; p < kPhases; ++p) {
            phase_count.fetch_add(1);
            barrier.wait();
            // After the barrier, every thread must have contributed to
            // this phase.
            if (phase_count.load() < (p + 1) * static_cast<int>(kThreads))
                violated.store(true);
            barrier.wait();
        }
    });
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(phase_count.load(), kPhases * static_cast<int>(kThreads));
}

TEST(PerThread, SlotsAreIndependent)
{
    PerThread<long> acc;
    ThreadPool::get().run(4, [&](unsigned tid) {
        for (int i = 0; i < 1000; ++i)
            acc.local() += tid + 1;
    });
    long sum = 0;
    for (std::size_t t = 0; t < acc.size(); ++t)
        sum += acc.remote(t);
    EXPECT_EQ(sum, 1000 * (1 + 2 + 3 + 4));
    EXPECT_EQ(acc.reduceSum(), sum);
}

TEST(Termination, QuiescentOnlyWhenDrained)
{
    TerminationDetector term;
    term.reset(2);
    EXPECT_FALSE(term.quiescent());
    term.retire();
    term.add();
    EXPECT_FALSE(term.quiescent());
    term.retire();
    term.retire();
    EXPECT_TRUE(term.quiescent());
}

TEST(Prng, DeterministicAndPortable)
{
    Prng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    // Different seeds diverge.
    Prng d(1), e(2);
    EXPECT_NE(d.next(), e.next());
}

TEST(Prng, BoundedAndDoubleRanges)
{
    Prng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(CacheModel, HitsAfterFirstTouch)
{
    galois::model::CacheModel cache;
    int data[16] = {};
    EXPECT_TRUE(cache.access(&data[0]));  // cold miss
    EXPECT_FALSE(cache.access(&data[0])); // hit
    EXPECT_FALSE(cache.access(&data[1])); // same line
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.accesses(), 3u);
}

TEST(CacheModel, CapacityEviction)
{
    galois::model::CacheModel::Config cfg;
    cfg.sets = 2;
    cfg.ways = 2;
    cfg.lineBytes = 64;
    galois::model::CacheModel cache(cfg);
    // 8 distinct lines > 4-line capacity: a second sweep must also miss.
    std::vector<char> data(8 * 64);
    for (int sweep = 0; sweep < 2; ++sweep)
        for (int l = 0; l < 8; ++l)
            cache.access(&data[static_cast<std::size_t>(l) * 64]);
    EXPECT_EQ(cache.misses(), 16u);
}

TEST(LinReg, RecoversExactLine)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 + 2.0 * x);
    const auto fit = galois::model::fitLinear(xs, ys);
    EXPECT_NEAR(fit.b0, 3.0, 1e-12);
    EXPECT_NEAR(fit.b1, 2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinReg, NoisyFitHasR2BelowOne)
{
    Prng rng(1);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = rng.nextDouble(0, 10);
        xs.push_back(x);
        ys.push_back(1.0 + 0.5 * x + rng.nextDouble(-1, 1));
    }
    const auto fit = galois::model::fitLinear(xs, ys);
    EXPECT_GT(fit.r2, 0.5);
    EXPECT_LT(fit.r2, 1.0);
    EXPECT_NEAR(fit.b1, 0.5, 0.1);
}

TEST(ParallelSort, MatchesStdSortAcrossThreadCounts)
{
    Prng rng(99);
    std::vector<std::uint64_t> base(50000);
    for (auto& v : base)
        v = rng.nextBounded(1000);
    std::vector<std::uint64_t> expect(base);
    std::sort(expect.begin(), expect.end());

    for (unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
        std::vector<std::uint64_t> v(base);
        parallelSort(v, std::less<std::uint64_t>(), threads);
        EXPECT_EQ(v, expect) << threads << " threads";
    }
}

TEST(ParallelSort, CustomComparatorAndSmallInputs)
{
    std::vector<int> v{5, 3, 9, 1};
    parallelSort(v, std::greater<int>(), 8);
    EXPECT_EQ(v, (std::vector<int>{9, 5, 3, 1}));

    std::vector<int> empty;
    parallelSort(empty, std::less<int>(), 4);
    EXPECT_TRUE(empty.empty());
}

TEST(ParallelStableSort, PreservesEqualKeyOrder)
{
    // Pairs sorted by first only; seconds record the original order.
    std::vector<std::pair<int, int>> v;
    Prng rng(7);
    for (int i = 0; i < 40000; ++i)
        v.emplace_back(static_cast<int>(rng.nextBounded(16)), i);
    parallelStableSort(
        v, [](const auto& a, const auto& b) { return a.first < b.first; },
        4);
    for (std::size_t i = 1; i < v.size(); ++i) {
        ASSERT_LE(v[i - 1].first, v[i].first);
        if (v[i - 1].first == v[i].first) {
            ASSERT_LT(v[i - 1].second, v[i].second) << i;
        }
    }
}

TEST(Barrier, ReinitChangesParticipantCount)
{
    Barrier barrier(2);
    std::atomic<int> phase{0};
    ThreadPool::get().run(2, [&](unsigned) {
        barrier.wait();
        phase.fetch_add(1);
        barrier.wait();
    });
    EXPECT_EQ(phase.load(), 2);
    barrier.reinit(4);
    EXPECT_EQ(barrier.participants(), 4u);
    ThreadPool::get().run(4, [&](unsigned) {
        barrier.wait();
        phase.fetch_add(1);
        barrier.wait();
    });
    EXPECT_EQ(phase.load(), 6);
}

TEST(SegmentedVectorStress, ProducerConsumerVisibility)
{
    // Appenders publish indices through a side channel; readers access
    // them immediately. Elements must always be fully constructed.
    struct Cell
    {
        std::uint64_t a;
        std::uint64_t b;
        explicit Cell(std::uint64_t v = 0) : a(v), b(~v) {}
    };
    SegmentedVector<Cell> vec;
    constexpr int kPerThread = 4000;
    std::vector<std::atomic<std::int64_t>> published(4 * kPerThread);
    for (auto& p : published)
        p.store(-1, std::memory_order_relaxed);

    ThreadPool::get().run(8, [&](unsigned tid) {
        if (tid < 4) {
            // producer
            for (int i = 0; i < kPerThread; ++i) {
                const std::uint64_t v = tid * kPerThread + i;
                const std::size_t idx = vec.emplaceBack(v);
                published[v].store(static_cast<std::int64_t>(idx),
                                   std::memory_order_release);
            }
        } else {
            // consumer: spot-check whatever is already published
            for (int scan = 0; scan < 20000; ++scan) {
                const std::size_t v = scan % published.size();
                const std::int64_t idx =
                    published[v].load(std::memory_order_acquire);
                if (idx >= 0) {
                    const Cell& c = vec[static_cast<std::size_t>(idx)];
                    ASSERT_EQ(c.a, v);
                    ASSERT_EQ(c.b, ~static_cast<std::uint64_t>(v));
                }
            }
        }
    });
    EXPECT_EQ(vec.size(), 4u * kPerThread);
}
