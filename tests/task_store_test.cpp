/**
 * @file
 * Unit tests for the SoA task store (runtime/task_store.h): lane
 * invariants (slot == id - 1, lane initialization, flag/failure lanes),
 * generation-scoped arena behavior (rewind, slab reuse, allocation-
 * failure injection at lane growth), payload/continuation lifetime, and
 * the prefix-sum selection compactSelect — whose per-thread results over
 * a blockRange partition must concatenate to exactly the single-threaded
 * result at every thread count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <random>
#include <vector>

#include "runtime/round_engine.h" // blockRange
#include "runtime/task_store.h"
#include "support/failpoint.h"

using namespace galois::runtime;
using galois::support::FailPlan;

namespace {

/** Payload with instance accounting, for lifetime tests. */
struct Tracked
{
    static int live;
    int v = 0;
    explicit Tracked(int x = 0) : v(x) { ++live; }
    Tracked(Tracked&& o) noexcept : v(o.v) { ++live; }
    Tracked(const Tracked&) = delete;
    ~Tracked() { --live; }
};
int Tracked::live = 0;

/** Fill a store with n tasks carrying ids 1..n. */
void
build(TaskStore<int>& s, std::size_t n)
{
    s.beginBuild(n);
    for (std::size_t i = 0; i < n; ++i)
        s.emplace(static_cast<int>(i * 10), i + 1);
}

} // namespace

// ---------------------------------------------------------------------
// Lane invariants
// ---------------------------------------------------------------------

TEST(TaskStore, SlotIsIdMinusOneAndLanesInitialize)
{
    TaskStore<int> s;
    build(s, 100);
    ASSERT_EQ(s.size(), 100u);
    for (std::uint32_t slot = 0; slot < 100; ++slot) {
        EXPECT_EQ(s.id(slot), slot + 1u);
        EXPECT_EQ(s.record(slot)->id, slot + 1u);
        EXPECT_EQ(s.item(slot), static_cast<int>(slot) * 10);
        EXPECT_EQ(s.span(slot).off, 0u);
        EXPECT_EQ(s.span(slot).len, 0u);
        EXPECT_EQ(s.local(slot), nullptr);
        EXPECT_FALSE(s.taskFailed(slot));
        EXPECT_FALSE(s.notSelected(slot));
    }
}

TEST(TaskStore, FlagAndFailureLanesAreIndependentAndRetryResets)
{
    TaskStore<int> s;
    build(s, 8);

    s.record(3)->notSelected.store(true, std::memory_order_relaxed);
    s.setTaskFailed(5);
    s.span(3) = AcquireSpan{7, 2};

    EXPECT_TRUE(s.notSelected(3));
    EXPECT_FALSE(s.taskFailed(3));
    EXPECT_TRUE(s.taskFailed(5));
    EXPECT_FALSE(s.notSelected(5));

    // Retry reset clears the round state (span, flag) but not the
    // failure lane — a task that raised a real error stays failed.
    s.clearForRetry(3);
    s.clearForRetry(5);
    EXPECT_FALSE(s.notSelected(3));
    EXPECT_EQ(s.span(3).len, 0u);
    EXPECT_TRUE(s.taskFailed(5));
}

// ---------------------------------------------------------------------
// Lifetime: payloads and continuation state
// ---------------------------------------------------------------------

TEST(TaskStore, ResetDestroysPayloadsAndLeftoverLocals)
{
    TaskStore<Tracked> s;
    s.beginBuild(10);
    for (std::size_t i = 0; i < 10; ++i)
        s.emplace(Tracked(static_cast<int>(i)), i + 1);
    EXPECT_EQ(Tracked::live, 10);

    // Simulate a continuation left behind by a fault: reset() must run
    // its deleter exactly once.
    s.local(4) = new Tracked(99);
    s.localDeleter(4) = [](void* p) { delete static_cast<Tracked*>(p); };
    EXPECT_EQ(Tracked::live, 11);

    s.reset();
    EXPECT_EQ(Tracked::live, 0);
    EXPECT_EQ(s.size(), 0u);
}

TEST(TaskStore, DestroyLocalIsIdempotent)
{
    TaskStore<int> s;
    build(s, 2);
    Tracked::live = 0;
    s.local(0) = new Tracked(1);
    s.localDeleter(0) = [](void* p) { delete static_cast<Tracked*>(p); };
    s.destroyLocal(0);
    EXPECT_EQ(Tracked::live, 0);
    EXPECT_EQ(s.local(0), nullptr);
    s.destroyLocal(0); // no local anymore: no-op
    EXPECT_EQ(Tracked::live, 0);
}

// ---------------------------------------------------------------------
// Arena behavior: rewind, slab reuse, growth failure
// ---------------------------------------------------------------------

TEST(TaskStore, RebuildReusesArenaSlabs)
{
    TaskStore<int> s;
    build(s, 5000);
    const std::size_t chunks = s.arena().chunkCount();
    const std::size_t reserved = s.arena().bytesReserved();
    ASSERT_GT(chunks, 0u);

    // Same-size (and smaller) generations must be carved entirely from
    // the retained slabs: no new chunk, no new reservation.
    for (std::size_t n : {5000u, 1234u, 5000u}) {
        build(s, n);
        EXPECT_EQ(s.size(), n);
        EXPECT_EQ(s.arena().chunkCount(), chunks) << n;
        EXPECT_EQ(s.arena().bytesReserved(), reserved) << n;
    }
}

TEST(TaskStore, GrowthFailpointThrowsAndStoreRecovers)
{
    using galois::support::failpoints::Scoped;
    TaskStore<int> s;
    build(s, 16); // allocates the first chunk(s)

    {
        // Inject bad_alloc at the next chunk growth (the failpoint key
        // is the chunk ordinal): a generation too large for the
        // retained slabs must fail cleanly mid-build.
        Scoped fp("arena.chunk",
                  FailPlan::badAllocAt(s.arena().chunkCount()));
        EXPECT_THROW(s.beginBuild(1u << 20), std::bad_alloc);
    }
    // The failed build left no tasks behind; disarmed, the store grows
    // and builds normally again.
    EXPECT_EQ(s.size(), 0u);
    build(s, 1000);
    EXPECT_EQ(s.size(), 1000u);
    EXPECT_EQ(s.id(999), 1000u);
}

// ---------------------------------------------------------------------
// compactSelect: prefix-sum selection equivalence
// ---------------------------------------------------------------------

TEST(TaskStore, CompactSelectMatchesPerTaskPredicateAcrossPartitions)
{
    // Randomized rounds: random flag/failure lanes over a random
    // (ascending, non-contiguous) slot list — the shape of a real round,
    // where cur is carry slots plus a queue prefix. The per-thread
    // results at 1/2/4/8 partitions, concatenated in thread order, must
    // equal the single-threaded result exactly.
    std::mt19937 rng(20260809);
    for (int round = 0; round < 25; ++round) {
        TaskStore<int> s;
        const std::size_t n = 1 + rng() % 600;
        build(s, n);

        std::vector<std::uint32_t> slots;
        for (std::uint32_t slot = 0; slot < n; ++slot) {
            if (rng() % 4 != 0) // ~75% of the generation in this round
                slots.push_back(slot);
            if (rng() % 8 == 0)
                s.record(slot)->notSelected.store(
                    true, std::memory_order_relaxed);
            if (rng() % 16 == 0)
                s.setTaskFailed(slot);
        }

        // Reference: the per-task predicate, applied in list order.
        std::vector<std::uint32_t> ref_sel, ref_def;
        for (const std::uint32_t slot : slots) {
            if (!s.taskFailed(slot) && !s.notSelected(slot))
                ref_sel.push_back(slot);
            else
                ref_def.push_back(slot);
        }

        std::vector<std::uint32_t> one_sel, one_def;
        compactSelect(s, slots, 0, slots.size(), one_sel, one_def);
        EXPECT_EQ(one_sel, ref_sel) << "round " << round;
        EXPECT_EQ(one_def, ref_def) << "round " << round;

        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            std::vector<std::uint32_t> sel, def;
            for (unsigned tid = 0; tid < threads; ++tid) {
                auto [begin, end] =
                    blockRange(slots.size(), tid, threads);
                compactSelect(s, slots, begin, end, sel, def);
            }
            EXPECT_EQ(sel, ref_sel) << "round " << round << " threads "
                                    << threads;
            EXPECT_EQ(def, ref_def) << "round " << round << " threads "
                                    << threads;
        }
    }
}
