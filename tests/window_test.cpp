/**
 * @file
 * Unit tests for the adaptive commit-ratio window policy
 * (runtime/window.h) — the exact arithmetic matters: the golden-digest
 * harness pins schedules that depend on every rounding decision here.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "runtime/window.h"

using galois::runtime::WindowConfig;
using galois::runtime::WindowPolicy;

namespace {

WindowPolicy
makePolicy(double target = 0.95, std::uint64_t min_window = 16,
           std::uint64_t initial = 0, std::uint64_t fixed = 0)
{
    WindowConfig cfg;
    cfg.commitTarget = target;
    cfg.minWindow = min_window;
    cfg.initialWindow = initial;
    cfg.fixedWindow = fixed;
    WindowPolicy p(cfg);
    p.beginGeneration();
    return p;
}

} // namespace

TEST(WindowPolicy, DefaultInitialWindowIsFourTimesMin)
{
    EXPECT_EQ(makePolicy(0.95, 16).size(), 64u);
    EXPECT_EQ(makePolicy(0.95, 5).size(), 20u);
}

TEST(WindowPolicy, ExplicitInitialWindowWins)
{
    EXPECT_EQ(makePolicy(0.95, 16, 100).size(), 100u);
}

TEST(WindowPolicy, GrowsByDoublingOnCommitRatioAtOrAboveTarget)
{
    WindowPolicy p = makePolicy(0.95, 16);
    p.update(64, 64); // ratio 1.0
    EXPECT_EQ(p.size(), 128u);
    p.update(128, 122); // ratio ~0.953 >= 0.95
    EXPECT_EQ(p.size(), 256u);
}

TEST(WindowPolicy, ShrinksProportionallyBelowTarget)
{
    WindowPolicy p = makePolicy(0.95, 16, 1000);
    p.update(1000, 475); // ratio 0.475 -> 1000 * 0.475/0.95 = 500
    EXPECT_EQ(p.size(), 500u);
    p.update(500, 250); // ratio 0.5 -> 500 * 0.5/0.95 = 263.15.. -> 263
    EXPECT_EQ(p.size(), 263u);
}

TEST(WindowPolicy, ShrinkClampsAtMinWindow)
{
    WindowPolicy p = makePolicy(0.95, 16, 64);
    p.update(64, 1); // would shrink to ~1
    EXPECT_EQ(p.size(), 16u);
    p.update(16, 0); // zero commits: still clamped
    EXPECT_EQ(p.size(), 16u);
}

TEST(WindowPolicy, EmptyRoundCountsAsFullCommit)
{
    WindowPolicy p = makePolicy(0.95, 16);
    p.update(0, 0); // attempted == 0 -> ratio 1.0 -> grow
    EXPECT_EQ(p.size(), 128u);
}

TEST(WindowPolicy, CommitRatioExactlyZeroFloorsAtMinWindowInOneStep)
{
    // Ratio exactly 0 is the worst round the policy can observe: the
    // proportional shrink computes window * 0 and the clamp must catch
    // it immediately — no gradual decay, no underflow to zero.
    WindowPolicy p = makePolicy(0.95, 16, std::uint64_t(1) << 20);
    p.update(std::uint64_t(1) << 20, 0);
    EXPECT_EQ(p.size(), 16u);
}

TEST(WindowPolicy, CommitRatioExactlyOneDoublesFromAnySize)
{
    // Ratio exactly 1 sits on the >= commitTarget boundary and must
    // take the doubling branch, not the proportional one (which would
    // only grow by 1/commitTarget).
    WindowPolicy p = makePolicy(0.95, 16, 1000);
    p.update(1000, 1000);
    EXPECT_EQ(p.size(), 2000u);
    p.update(2000, 2000);
    EXPECT_EQ(p.size(), 4000u);
}

TEST(WindowPolicy, WindowClampsToSingleTask)
{
    // minWindow 1: the policy may shrink all the way to a one-task
    // window (a fully serial round — the degenerate schedule every
    // workload can make progress under) and must recover by doubling.
    WindowPolicy p = makePolicy(0.95, /*min_window=*/1);
    EXPECT_EQ(p.size(), 4u); // beginGeneration seeds 4 * minWindow
    p.update(4, 0);
    EXPECT_EQ(p.size(), 1u);
    p.update(1, 0); // all-abort at window 1: pinned at the floor
    EXPECT_EQ(p.size(), 1u);
    p.update(1, 1); // ratio exactly 1 climbs back out
    EXPECT_EQ(p.size(), 2u);
}

TEST(WindowPolicy, GrowthCapsInsteadOfOverflowing)
{
    WindowPolicy p = makePolicy(0.95, 16);
    for (int i = 0; i < 80; ++i)
        p.update(10, 10);
    // Doubling stops once the window passes 2^40; it never wraps.
    EXPECT_GE(p.size(), std::uint64_t(1) << 40);
    EXPECT_LE(p.size(), std::uint64_t(1) << 41);
}

TEST(WindowPolicy, FixedWindowDisablesAdaptivity)
{
    WindowPolicy p = makePolicy(0.95, 16, 0, /*fixed=*/911);
    EXPECT_EQ(p.size(), 911u);
    p.update(911, 911);
    EXPECT_EQ(p.size(), 911u);
    p.update(911, 3);
    EXPECT_EQ(p.size(), 911u);
    p.beginGeneration();
    EXPECT_EQ(p.size(), 911u);
}

TEST(WindowPolicy, WindowPersistsAcrossGenerations)
{
    WindowPolicy p = makePolicy(0.95, 16);
    p.update(64, 64);
    p.update(128, 128);
    EXPECT_EQ(p.size(), 256u);
    p.beginGeneration(); // adaptive window carries over, no re-warm
    EXPECT_EQ(p.size(), 256u);
}

TEST(WindowPolicy, UpdateSequenceIsPure)
{
    // Identical (attempted, committed) sequences give identical sizes —
    // the property the deterministic scheduler's portability rests on.
    auto run = [] {
        WindowPolicy p = makePolicy(0.9, 8);
        std::uint64_t acc = 0;
        const std::uint64_t attempts[] = {32, 64, 128, 90, 45, 45, 90};
        const std::uint64_t commits[] = {32, 60, 40, 89, 45, 20, 90};
        for (int i = 0; i < 7; ++i) {
            p.update(attempts[i], commits[i]);
            acc = acc * 31 + p.size();
        }
        return acc;
    };
    EXPECT_EQ(run(), run());
}
